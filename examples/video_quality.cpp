// Live-video / game telemetry monitoring (paper §8.2-§8.3):
//
//   "one job joins the measurements with a table of Internet Autonomous
//    Systems (ASes) and then aggregates the performance by AS over time to
//    identify poorly performing ASes. When such an AS is identified, the
//    streaming job triggers an alert."
//
// Client latency measurements stream in from the bus; the query joins them
// to a static AS table, computes per-AS average latency on one-minute
// event-time windows (append mode: each window's result is final once the
// watermark passes), and a foreach sink plays the role of the alerting
// hook for ASes above the SLA threshold.

#include <cstdio>

#include "bus/message_bus.h"
#include "common/logging.h"
#include "connectors/bus_connectors.h"
#include "exec/streaming_query.h"

using namespace sstreaming;  // NOLINT — example brevity

namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr MetricSchema() {
  return Schema::Make({{"client_ip_prefix", TypeId::kInt64, false},
                       {"latency_ms", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

}  // namespace

int main() {
  GlobalLogLevel() = LogLevel::kInfo;
  MessageBus bus;
  SS_CHECK_OK(bus.CreateTopic("metrics", 4));

  // Static routing table: IP prefix -> AS.
  DataFrame as_table =
      DataFrame::FromRows(
          Schema::Make({{"client_ip_prefix", TypeId::kInt64, false},
                        {"as_name", TypeId::kString, false}}),
          {{Value::Int64(10), Value::Str("AS-GoodNet")},
           {Value::Int64(20), Value::Str("AS-FineISP")},
           {Value::Int64(30), Value::Str("AS-CongestedCable")}})
          .TakeValue();

  auto source = std::make_shared<BusSource>(&bus, "metrics", MetricSchema());
  DataFrame per_as_quality =
      DataFrame::ReadStream(source)
          .WithWatermark("time", 15 * kSec)
          .Join(as_table, {"client_ip_prefix"})
          .GroupBy({As(TumblingWindow(Col("time"), 60 * kSec), "window"),
                    NamedExpr{Col("as_name"), "as_name"}})
          .Agg({AvgOf(Col("latency_ms"), "avg_latency"),
                MaxOf(Col("latency_ms"), "worst"), CountAll("samples")});

  constexpr double kSlaMs = 100.0;
  auto alerting = std::make_shared<ForeachSink>(
      [&](int64_t epoch, OutputMode, const std::vector<Row>& rows) -> Status {
        for (const Row& r : rows) {
          // (window_start, window_end, as_name, avg_latency, worst, samples)
          double avg = r[3].float64_value();
          std::printf("  [epoch %lld] window %llds AS=%-18s avg=%.1fms "
                      "worst=%sms n=%s%s\n",
                      static_cast<long long>(epoch),
                      static_cast<long long>(r[0].int64_value() / kSec),
                      r[2].ToString().c_str(), avg, r[4].ToString().c_str(),
                      r[5].ToString().c_str(),
                      avg > kSlaMs ? "   << ALERT: page the on-call" : "");
        }
        return Status::OK();
      });

  QueryOptions opts;
  opts.mode = OutputMode::kAppend;  // emit each window once, when final
  opts.num_partitions = 4;
  auto query = StreamingQuery::Start(per_as_quality, alerting, opts);
  SS_CHECK(query.ok()) << query.status().ToString();

  // Minute one: all ASes healthy; minute two: AS-CongestedCable degrades.
  auto feed = [&](int64_t prefix, int64_t latency, int64_t sec) {
    SS_CHECK_OK(bus.Append("metrics",
                           static_cast<int>(prefix % 4),
                           {Value::Int64(prefix), Value::Int64(latency),
                            Value::Timestamp(sec * kSec)})
                    .status());
  };
  for (int64_t s = 0; s < 60; s += 5) {
    feed(10, 20 + s % 7, s);
    feed(20, 35 + s % 11, s);
    feed(30, 60 + s % 13, s);
  }
  for (int64_t s = 60; s < 120; s += 5) {
    feed(10, 22 + s % 7, s);
    feed(20, 37 + s % 11, s);
    feed(30, 140 + s % 31, s);  // congestion event
  }
  // Late marker records push the watermark past both windows.
  feed(10, 20, 140);
  std::printf("--- per-AS window results as they finalize ---\n");
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  feed(10, 20, 141);
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  feed(10, 20, 142);
  SS_CHECK_OK((*query)->ProcessAllAvailable());
  return 0;
}

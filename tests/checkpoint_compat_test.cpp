// Checkpoint↔plan compatibility: fingerprint stability and JSON round-trip,
// the SS3xxx diff matrix (key schema, output mode, stateful-op removal,
// shard/partition count, aggregate encoding), the pre-recovery gate in
// StreamingQuery::Start — a byte-identical restart of every stateful
// pipeline stays green while each mutation class is caught BEFORE recovery
// touches state — the allow_checkpoint_incompatibility override, torn and
// corrupt manifests, the manifest.write / fs.dirsync failpoint seams, and
// offline parity via LintCheckpoint (docs/UPGRADES.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/checkpoint_compat.h"
#include "analysis/plan_fingerprint.h"
#include "common/random.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"
#include "testing/failpoints.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

SchemaPtr RightSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"rv", TypeId::kInt64, false},
                       {"rtime", TypeId::kTimestamp, false}});
}

std::vector<Row> MakeRound(Random* rng, int round, int rows) {
  static const char* kKeys[] = {"alpha", "beta", "gamma", "delta"};
  std::vector<Row> out;
  for (int i = 0; i < rows; ++i) {
    int64_t sec = round * 6 + static_cast<int64_t>(rng->Uniform(8));
    out.push_back({Value::Str(kKeys[rng->Uniform(4)]),
                   Value::Int64(static_cast<int64_t>(rng->Uniform(50))),
                   Value::Timestamp(sec * kSec)});
  }
  return out;
}

enum class Pipeline { kWindowedAgg, kDedup, kJoin };

/// The three stateful workloads the battery restarts. `right` is only set
/// for the join.
DataFrame BuildPipeline(Pipeline pipeline,
                        const std::shared_ptr<MemoryStream>& left,
                        const std::shared_ptr<MemoryStream>& right,
                        OutputMode* mode) {
  DataFrame df = DataFrame::ReadStream(left);
  switch (pipeline) {
    case Pipeline::kWindowedAgg:
      *mode = OutputMode::kUpdate;
      return df.WithWatermark("time", 5 * kSec)
          .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                    NamedExpr{Col("k"), "k"}})
          .Agg({SumOf(Col("v"), "total")});
    case Pipeline::kDedup:
      *mode = OutputMode::kAppend;
      return df.SelectColumns({"k", "v"}).Distinct();
    case Pipeline::kJoin:
      *mode = OutputMode::kAppend;
      return df.WithWatermark("time", 5 * kSec)
          .Join(DataFrame::ReadStream(right).WithWatermark("rtime", 5 * kSec),
                {"k"});
  }
  return df;
}

/// Analyzes `df` and computes its fingerprint the way Start does.
PlanFingerprint FingerprintOf(const DataFrame& df, OutputMode mode,
                              int partitions = 2, int shards = 4) {
  auto analyzed = Analyzer::Analyze(df.plan());
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return ComputePlanFingerprint(*analyzed, mode, partitions, shards);
}

std::vector<DiagCode> Codes(const PlanAnalysis& analysis) {
  std::vector<DiagCode> codes;
  for (const Diagnostic& d : analysis.diagnostics()) codes.push_back(d.code);
  return codes;
}

bool WarningsHave(const StreamingQuery& query, DiagCode code) {
  for (const Diagnostic& d : query.plan_warnings()) {
    if (d.code == code && d.severity == DiagSeverity::kWarning) return true;
  }
  return false;
}

class CheckpointCompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().DisarmAll();
    auto dir = MakeTempDir("ckpt_compat");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
    // Fingerprint-only tests use this stream as a schema source;
    // SeedCheckpoint replaces it with the stream that fed the checkpoint.
    left_ = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    RemoveDirRecursive(dir_).ok();
  }

  /// Runs `pipeline` against the checkpoint dir for three rounds and stops,
  /// leaving durable state + manifest behind for restart experiments. The
  /// streams stay alive in `left_`/`right_` (a MemoryStream retains its
  /// rows) so a restarted query can replay WAL epochs against them, exactly
  /// as a durable source would serve re-reads.
  void SeedCheckpoint(Pipeline pipeline, QueryOptions opts = {}) {
    left_ = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
    right_ = pipeline == Pipeline::kJoin
                 ? std::make_shared<MemoryStream>("right", RightSchema(), 2)
                 : nullptr;
    OutputMode mode;
    DataFrame df = BuildPipeline(pipeline, left_, right_, &mode);
    opts.mode = mode;
    opts.num_partitions = 2;
    opts.checkpoint_dir = dir_;
    opts.state_checkpoint_interval = 2;
    opts.enable_tracing = false;
    auto sink = std::make_shared<MemorySink>();
    auto query = StreamingQuery::Start(df, sink, opts);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    Random lrng(7), rrng(8);
    for (int r = 0; r < 3; ++r) {
      ASSERT_TRUE(left_->AddData(MakeRound(&lrng, r, 10)).ok());
      if (right_ != nullptr) {
        ASSERT_TRUE(right_->AddData(MakeRound(&rrng, r, 10)).ok());
      }
      ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    }
  }

  std::string dir_;
  std::shared_ptr<MemoryStream> left_;
  std::shared_ptr<MemoryStream> right_;
};

// ---------------------------------------------------------------------------
// Fingerprint identity.
// ---------------------------------------------------------------------------

TEST_F(CheckpointCompatTest, FingerprintIsDeterministicAndRoundTrips) {
  OutputMode mode;
  DataFrame df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &mode);
  PlanFingerprint a = FingerprintOf(df, mode);
  PlanFingerprint b = FingerprintOf(df, mode);
  EXPECT_EQ(a.PlanHash(), b.PlanHash());
  EXPECT_EQ(a.StatefulHash(), b.StatefulHash());
  ASSERT_EQ(a.StatefulOps().size(), 1u);
  EXPECT_EQ(a.StatefulOps()[0]->kind, "Aggregate");
  EXPECT_FALSE(a.StatefulOps()[0]->key_schema.empty());

  // JSON round trip preserves both hashes and the byte rendering.
  auto parsed = PlanFingerprint::FromJson(a.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->PlanHash(), a.PlanHash());
  EXPECT_EQ(parsed->StatefulHash(), a.StatefulHash());
  EXPECT_EQ(parsed->Render(), a.Render());
  // The serialized form is deterministic (map-ordered objects): the HTTP
  // endpoint and the manifest rely on byte-stable dumps.
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

TEST_F(CheckpointCompatTest, StatefulHashIgnoresStatelessAncestors) {
  auto left = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
  OutputMode mode;
  DataFrame base = BuildPipeline(Pipeline::kWindowedAgg, left, nullptr, &mode);
  DataFrame filtered =
      DataFrame::ReadStream(left)
          .Where(Gt(Col("v"), Lit(int64_t{5})))
          .WithWatermark("time", 5 * kSec)
          .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                    NamedExpr{Col("k"), "k"}})
          .Agg({SumOf(Col("v"), "total")});
  PlanFingerprint a = FingerprintOf(base, mode);
  PlanFingerprint b = FingerprintOf(filtered, mode);
  // An added stateless filter changes the plan shape but must not orphan
  // the aggregate's checkpointed state.
  EXPECT_NE(a.PlanHash(), b.PlanHash());
  EXPECT_EQ(a.StatefulHash(), b.StatefulHash());
}

TEST_F(CheckpointCompatTest, FromJsonRejectsTamperedDocuments) {
  OutputMode mode;
  DataFrame df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &mode);
  PlanFingerprint fp = FingerprintOf(df, mode);

  Json newer = fp.ToJson();
  newer.Set("formatVersion", Json::Int(PlanFingerprint::kFormatVersion + 1));
  auto r1 = PlanFingerprint::FromJson(newer);
  EXPECT_TRUE(!r1.ok() && r1.status().IsInvalidArgument());

  Json edited = fp.ToJson();
  edited.Set("numStateShards", Json::Int(fp.num_state_shards + 3));
  auto r2 = PlanFingerprint::FromJson(edited);
  EXPECT_TRUE(!r2.ok() && r2.status().IsInvalidArgument())
      << "stored hash must not verify after a field edit";
}

// ---------------------------------------------------------------------------
// Diff matrix.
// ---------------------------------------------------------------------------

TEST_F(CheckpointCompatTest, DiffCatchesEveryMutationClass) {
  auto left = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
  OutputMode mode;
  DataFrame base = BuildPipeline(Pipeline::kWindowedAgg, left, nullptr, &mode);
  PlanFingerprint on_disk = FingerprintOf(base, mode);

  // Identical plan: clean diff.
  EXPECT_TRUE(Codes(DiffFingerprints(on_disk, FingerprintOf(base, mode)))
                  .empty());

  // Key schema: group by k only instead of (window, k).
  DataFrame rekeyed = DataFrame::ReadStream(left)
                          .WithWatermark("time", 5 * kSec)
                          .GroupBy({NamedExpr{Col("k"), "k"}})
                          .Agg({SumOf(Col("v"), "total")});
  PlanAnalysis d1 = DiffFingerprints(on_disk, FingerprintOf(rekeyed, mode));
  EXPECT_TRUE(d1.Has(DiagCode::kCheckpointKeySchemaChanged));
  EXPECT_TRUE(d1.has_errors());

  // Aggregate encoding: avg folds (sum, count) slots, not sum's single slot.
  DataFrame refolded = DataFrame::ReadStream(left)
                           .WithWatermark("time", 5 * kSec)
                           .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec),
                                        "w"),
                                     NamedExpr{Col("k"), "k"}})
                           .Agg({AvgOf(Col("v"), "total")});
  PlanAnalysis d2 = DiffFingerprints(on_disk, FingerprintOf(refolded, mode));
  EXPECT_TRUE(d2.Has(DiagCode::kCheckpointStateDetailChanged));

  // Stateful op removed: plain projection has no aggregate at all.
  DataFrame stateless = DataFrame::ReadStream(left).SelectColumns({"k", "v"});
  PlanAnalysis d3 = DiffFingerprints(on_disk, FingerprintOf(stateless, mode));
  EXPECT_TRUE(d3.Has(DiagCode::kCheckpointStatefulOpRemoved));

  // Stateful op added (dedup downstream of the agg's input): warning only.
  DataFrame added = DataFrame::ReadStream(left)
                        .SelectColumns({"k", "v"})
                        .Distinct();
  PlanAnalysis d4 = DiffFingerprints(FingerprintOf(stateless, mode),
                                     FingerprintOf(added, mode));
  EXPECT_TRUE(d4.Has(DiagCode::kCheckpointStatefulOpAdded));
  EXPECT_FALSE(d4.has_errors());

  // Output mode / shard count / partition count come from QueryOptions.
  PlanAnalysis d5 =
      DiffFingerprints(on_disk, FingerprintOf(base, OutputMode::kComplete));
  EXPECT_TRUE(d5.Has(DiagCode::kCheckpointOutputModeChanged));
  PlanAnalysis d6 =
      DiffFingerprints(on_disk, FingerprintOf(base, mode, 2, 8));
  EXPECT_TRUE(d6.Has(DiagCode::kCheckpointShardCountChanged));
  PlanAnalysis d7 =
      DiffFingerprints(on_disk, FingerprintOf(base, mode, 4, 4));
  EXPECT_TRUE(d7.Has(DiagCode::kCheckpointPartitionCountChanged));

  // Watermark delay: eviction shifts, layout does not — warning.
  DataFrame slower = DataFrame::ReadStream(left)
                         .WithWatermark("time", 30 * kSec)
                         .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec),
                                      "w"),
                                   NamedExpr{Col("k"), "k"}})
                         .Agg({SumOf(Col("v"), "total")});
  PlanAnalysis d8 = DiffFingerprints(on_disk, FingerprintOf(slower, mode));
  EXPECT_TRUE(d8.Has(DiagCode::kCheckpointWatermarkChanged));
  EXPECT_FALSE(d8.has_errors());

  // Stateless-only edit: plan hash moves, stateful identity does not.
  DataFrame filtered = DataFrame::ReadStream(left)
                           .Where(Gt(Col("v"), Lit(int64_t{5})))
                           .WithWatermark("time", 5 * kSec)
                           .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec),
                                        "w"),
                                     NamedExpr{Col("k"), "k"}})
                           .Agg({SumOf(Col("v"), "total")});
  PlanAnalysis d9 = DiffFingerprints(on_disk, FingerprintOf(filtered, mode));
  EXPECT_EQ(Codes(d9),
            std::vector<DiagCode>{DiagCode::kCheckpointPlanShapeChanged});
  EXPECT_FALSE(d9.has_errors());
}

// ---------------------------------------------------------------------------
// The pre-recovery gate: differential restart battery.
// ---------------------------------------------------------------------------

class CompatRestartTest : public CheckpointCompatTest,
                          public ::testing::WithParamInterface<Pipeline> {};

TEST_P(CompatRestartTest, IdenticalRestartStaysGreenWithManifestPresent) {
  SeedCheckpoint(GetParam());
  ASSERT_TRUE(FileExists(PlanManifestPath(dir_)));

  // Byte-identical restart: the manifest gate must not fire at all.
  OutputMode mode;
  DataFrame df = BuildPipeline(GetParam(), left_, right_, &mode);
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir_;
  opts.state_checkpoint_interval = 2;
  opts.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (const Diagnostic& d : (*query)->plan_warnings()) {
    EXPECT_FALSE(IsCheckpointCode(d.code)) << d.Render();
  }
  // The query keeps working after recovery.
  Random lrng(70), rrng(80);
  ASSERT_TRUE(left_->AddData(MakeRound(&lrng, 3, 10)).ok());
  if (right_ != nullptr) {
    ASSERT_TRUE(right_->AddData(MakeRound(&rrng, 3, 10)).ok());
  }
  EXPECT_TRUE((*query)->ProcessAllAvailable().ok());

  // Offline parity: lint agrees the checkpoint is clean against this plan.
  PlanFingerprint fp = (*query)->plan_fingerprint();
  auto lint = LintCheckpoint(dir_, &fp);
  ASSERT_TRUE(lint.ok()) << lint.status().ToString();
  EXPECT_TRUE(lint->diagnostics().empty()) << lint->Explain();
}

INSTANTIATE_TEST_SUITE_P(Pipelines, CompatRestartTest,
                         ::testing::Values(Pipeline::kWindowedAgg,
                                           Pipeline::kDedup, Pipeline::kJoin));

TEST_F(CheckpointCompatTest, MutatedRestartFailsFastWithCodeAndProvenance) {
  struct Mutation {
    const char* expect_code;
    // Which plan variant to restart with (the options tweak rides along).
    const char* variant;
    OutputMode mode = OutputMode::kUpdate;
    int num_partitions = 2;
    int num_state_shards = 4;
  };
  const std::vector<Mutation> mutations = {
      {"SS3001", "rekeyed"},
      {"SS3006", "refolded"},
      // Keep update mode so the operator removal is the only divergence
      // (a mode flip too would surface SS3003 as the first error).
      {"SS3002", "stateless"},
      {"SS3003", "base", OutputMode::kComplete},
      {"SS3004", "base", OutputMode::kUpdate, 2, 8},
      {"SS3005", "base", OutputMode::kUpdate, 4, 4},
  };

  for (const Mutation& m : mutations) {
    SCOPED_TRACE(m.expect_code);
    // Fresh checkpoint per mutation: every diff runs against the pristine
    // windowed-agg manifest (and the override run below rewrites it).
    ASSERT_TRUE(RemoveDirRecursive(dir_).ok());
    SeedCheckpoint(Pipeline::kWindowedAgg);

    DataFrame df = DataFrame::ReadStream(left_);
    if (m.variant == std::string("rekeyed")) {
      df = df.WithWatermark("time", 5 * kSec)
               .GroupBy({NamedExpr{Col("k"), "k"}})
               .Agg({SumOf(Col("v"), "total")});
    } else if (m.variant == std::string("refolded")) {
      df = df.WithWatermark("time", 5 * kSec)
               .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                         NamedExpr{Col("k"), "k"}})
               .Agg({AvgOf(Col("v"), "total")});
    } else if (m.variant == std::string("stateless")) {
      df = df.SelectColumns({"k", "v"});
    } else {
      OutputMode ignored;
      df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &ignored);
    }

    QueryOptions opts;
    opts.mode = m.mode;
    opts.num_partitions = m.num_partitions;
    opts.num_state_shards = m.num_state_shards;
    opts.checkpoint_dir = dir_;
    opts.enable_tracing = false;
    auto sink = std::make_shared<MemorySink>();
    auto blocked = StreamingQuery::Start(df, sink, opts);
    ASSERT_FALSE(blocked.ok())
        << m.expect_code << " must block the restart before recovery";
    EXPECT_TRUE(blocked.status().code() == StatusCode::kFailedPrecondition)
        << blocked.status().ToString();
    EXPECT_NE(blocked.status().message().find(m.expect_code),
              std::string::npos)
        << blocked.status().ToString();

    // The failed start must not have touched the checkpoint: the original
    // manifest is intact and a byte-identical restart still works.
    OutputMode mode;
    DataFrame original = BuildPipeline(Pipeline::kWindowedAgg, left_,
                                       nullptr, &mode);
    QueryOptions orig_opts;
    orig_opts.mode = mode;
    orig_opts.num_partitions = 2;
    orig_opts.checkpoint_dir = dir_;
    orig_opts.enable_tracing = false;
    auto sink2 = std::make_shared<MemorySink>();
    auto unchanged = StreamingQuery::Start(original, sink2, orig_opts);
    ASSERT_TRUE(unchanged.ok()) << unchanged.status().ToString();
    for (const Diagnostic& d : (*unchanged)->plan_warnings()) {
      EXPECT_FALSE(IsCheckpointCode(d.code)) << d.Render();
    }
  }
}

TEST_F(CheckpointCompatTest, OverrideDowngradesTheErrorAndKeepsTheCode) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  // Shard-count change is the canonical forced migration: the store adopts
  // the on-disk count, so the override run is actually safe to execute.
  OutputMode mode;
  DataFrame df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &mode);
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.num_state_shards = 8;
  opts.checkpoint_dir = dir_;
  opts.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  ASSERT_FALSE(StreamingQuery::Start(df, sink, opts).ok());

  opts.allow_checkpoint_incompatibility = true;
  auto forced = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  EXPECT_TRUE(WarningsHave(**forced, DiagCode::kCheckpointShardCountChanged));
  // The forced run stays live: it processes new input on the adopted layout.
  Random lrng(90);
  ASSERT_TRUE(left_->AddData(MakeRound(&lrng, 3, 10)).ok());
  EXPECT_TRUE((*forced)->ProcessAllAvailable().ok());
}

TEST_F(CheckpointCompatTest, AddedStatelessOperatorOnlyWarns) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  DataFrame filtered = DataFrame::ReadStream(left_)
                           .Where(Gt(Col("v"), Lit(int64_t{5})))
                           .WithWatermark("time", 5 * kSec)
                           .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec),
                                        "w"),
                                     NamedExpr{Col("k"), "k"}})
                           .Agg({SumOf(Col("v"), "total")});
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir_;
  opts.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  auto query = StreamingQuery::Start(filtered, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(WarningsHave(**query, DiagCode::kCheckpointPlanShapeChanged));
}

// ---------------------------------------------------------------------------
// Torn and corrupt manifests; failpoint seams.
// ---------------------------------------------------------------------------

TEST_F(CheckpointCompatTest, TornManifestIsRepairedAndRewritten) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  // Truncate the manifest mid-document, as a torn atomic write would.
  auto text = ReadFile(PlanManifestPath(dir_));
  ASSERT_TRUE(text.ok());
  {
    std::string torn = text->substr(0, text->size() / 2);
    ASSERT_TRUE(RemoveFile(PlanManifestPath(dir_)).ok());
    ASSERT_TRUE(WriteFileAtomic(PlanManifestPath(dir_), torn).ok());
  }
  OutputMode mode;
  DataFrame df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &mode);
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir_;
  opts.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(WarningsHave(**query, DiagCode::kCheckpointManifestTorn));
  // A fresh, valid manifest is back in place for the next restart.
  auto lint = LintCheckpoint(dir_, nullptr);
  ASSERT_TRUE(lint.ok()) << lint.status().ToString();
  EXPECT_TRUE(lint->diagnostics().empty()) << lint->Explain();
}

TEST_F(CheckpointCompatTest, CorruptManifestBlocksUnlessOverridden) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  // Parseable JSON, wrong shape: this is corruption (or a newer build's
  // manifest), never a torn write — it must block, not self-heal.
  ASSERT_TRUE(RemoveFile(PlanManifestPath(dir_)).ok());
  ASSERT_TRUE(WriteFileAtomic(PlanManifestPath(dir_),
                              "{\"formatVersion\": 99}\n")
                  .ok());
  OutputMode mode;
  DataFrame df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &mode);
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir_;
  opts.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  auto blocked = StreamingQuery::Start(df, sink, opts);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().code() == StatusCode::kFailedPrecondition);
  EXPECT_NE(blocked.status().message().find("SS3007"), std::string::npos);

  opts.allow_checkpoint_incompatibility = true;
  auto forced = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  EXPECT_TRUE(WarningsHave(**forced, DiagCode::kCheckpointManifestCorrupt));
}

TEST_F(CheckpointCompatTest, ManifestWriteFailpointFailsStartCleanly) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  FailpointSpec spec;
  spec.hit = 1;
  ASSERT_TRUE(Failpoints::Instance().Arm("manifest.write", spec).ok());
  OutputMode mode;
  DataFrame df = BuildPipeline(Pipeline::kWindowedAgg, left_, nullptr, &mode);
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir_;
  opts.enable_tracing = false;
  auto sink = std::make_shared<MemorySink>();
  auto crashed = StreamingQuery::Start(df, sink, opts);
  ASSERT_FALSE(crashed.ok());
  EXPECT_TRUE(Failpoints::IsInjected(crashed.status()))
      << crashed.status().ToString();
  Failpoints::Instance().DisarmAll();
  // The failure left the old (valid) manifest in place: restart recovers.
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (const Diagnostic& d : (*query)->plan_warnings()) {
    EXPECT_FALSE(IsCheckpointCode(d.code)) << d.Render();
  }
}

TEST_F(CheckpointCompatTest, DirsyncFailpointLosesDurabilityNotTheFile) {
  FailpointSpec spec;
  spec.hit = 1;
  ASSERT_TRUE(Failpoints::Instance().Arm("fs.dirsync", spec).ok());
  Status s = WriteFileAtomic(dir_ + "/f", "payload");
  Failpoints::Instance().DisarmAll();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(Failpoints::IsInjected(s)) << s.ToString();
  // The rename already published the file; only the directory-entry fsync
  // was lost. Recovery code must treat the file as present.
  auto text = ReadFile(dir_ + "/f");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "payload");
}

// ---------------------------------------------------------------------------
// Offline lint.
// ---------------------------------------------------------------------------

TEST_F(CheckpointCompatTest, LintReportsTheSameCodesOffline) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  auto left = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
  DataFrame rekeyed = DataFrame::ReadStream(left)
                          .WithWatermark("time", 5 * kSec)
                          .GroupBy({NamedExpr{Col("k"), "k"}})
                          .Agg({SumOf(Col("v"), "total")});
  PlanFingerprint candidate = FingerprintOf(rekeyed, OutputMode::kUpdate);
  auto lint = LintCheckpoint(dir_, &candidate);
  ASSERT_TRUE(lint.ok()) << lint.status().ToString();
  EXPECT_TRUE(lint->Has(DiagCode::kCheckpointKeySchemaChanged))
      << lint->Explain();
  EXPECT_TRUE(lint->has_errors());
}

TEST_F(CheckpointCompatTest, LintCrossChecksOnDiskShardLayout) {
  SeedCheckpoint(Pipeline::kWindowedAgg);
  // Forge one partition's SHARDS meta to disagree with the manifest, as a
  // botched manual copy of a differently-sharded checkpoint would.
  bool rewrote = false;
  for (const char* op : {"op0", "op1", "op2", "op3", "op4", "op5"}) {
    std::string meta = dir_ + "/state/" + op + "/p0/SHARDS";
    if (!FileExists(meta)) continue;
    ASSERT_TRUE(WriteFileAtomic(meta, "9\n").ok());
    rewrote = true;
    break;
  }
  ASSERT_TRUE(rewrote) << "no stateful partition store found under state/";
  auto lint = LintCheckpoint(dir_, nullptr);
  ASSERT_TRUE(lint.ok()) << lint.status().ToString();
  EXPECT_TRUE(lint->Has(DiagCode::kCheckpointShardCountChanged))
      << lint->Explain();
  EXPECT_TRUE(lint->has_errors());
}

TEST_F(CheckpointCompatTest, LintDistinguishesMissingTornAndCorrupt) {
  EXPECT_TRUE(LintCheckpoint(dir_ + "/nonexistent", nullptr)
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(EnsureDir(dir_).ok());
  EXPECT_TRUE(LintCheckpoint(dir_, nullptr).status().IsNotFound())
      << "a dir without a manifest is not lintable";

  ASSERT_TRUE(WriteFileAtomic(PlanManifestPath(dir_), "{\"trunca").ok());
  auto torn = LintCheckpoint(dir_, nullptr);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn->Has(DiagCode::kCheckpointManifestTorn));
  EXPECT_FALSE(torn->has_errors());
  EXPECT_FALSE(FileExists(PlanManifestPath(dir_)))
      << "torn manifests are truncated away on open";

  ASSERT_TRUE(WriteFileAtomic(PlanManifestPath(dir_), "{\"x\": 1}").ok());
  auto corrupt = LintCheckpoint(dir_, nullptr);
  ASSERT_TRUE(corrupt.ok());
  EXPECT_TRUE(corrupt->Has(DiagCode::kCheckpointManifestCorrupt));
  EXPECT_TRUE(corrupt->has_errors());
}

}  // namespace
}  // namespace sstreaming

// Sharded keyed state: unit tests for ShardedStateStore's routing, sticky
// layout, and per-shard checkpointing, plus the differential equivalence
// battery — randomized stateful pipelines (windowed aggregation, dedup,
// stream-stream join) swept across shard counts {1, 2, 4, 7}, asserting the
// sink output is byte-identical to the 1-shard golden run per epoch, that
// merged state accounting agrees, and that both survive a crash-restart
// mid-run (docs/STATE_SHARDING.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "runtime/scheduler.h"
#include "state/sharded_state_store.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

class ShardedStateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sharded_state_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  std::string dir_;
};

TEST_F(ShardedStateStoreTest, StableHashIsFixedForever) {
  // The hash routes durable keys to shard directories; changing it would
  // orphan existing checkpoints. These are the published FNV-1a 64 vectors.
  EXPECT_EQ(ShardedStateStore::StableHashKey(""), 14695981039346656037ull);
  EXPECT_EQ(ShardedStateStore::StableHashKey("abc"), 0xe71fa2190541574bull);
}

TEST_F(ShardedStateStoreTest, RoutesAcrossShardsAndAggregatesAccounting) {
  ShardedStateStore::Options opts;
  opts.num_shards = 4;
  auto store = ShardedStateStore::Open(dir_, 0, opts).TakeValue();
  ASSERT_EQ(store->num_shards(), 4);
  for (int i = 0; i < 100; ++i) {
    store->Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  EXPECT_EQ(store->size(), 100);
  for (int i = 0; i < 100; ++i) {
    auto v = store->Get("key" + std::to_string(i));
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "value" + std::to_string(i));
  }
  // 100 uniform keys should spread over all 4 shards, and the per-shard
  // sizes must sum to the aggregate accounting exactly.
  auto sizes = store->PerShardSizes();
  ASSERT_EQ(sizes.size(), 4u);
  int64_t rows = 0, bytes = 0;
  for (const auto& s : sizes) {
    EXPECT_GT(s.rows, 0);
    rows += s.rows;
    bytes += s.bytes;
  }
  EXPECT_EQ(rows, store->size());
  EXPECT_EQ(bytes, store->ApproxBytes());
  // ForEach visits every entry exactly once.
  int64_t visited = 0;
  store->ForEach([&](const std::string&, const std::string&) { ++visited; });
  EXPECT_EQ(visited, 100);
}

TEST_F(ShardedStateStoreTest, AppendRoutesToTheSameShardAsPut) {
  ShardedStateStore::Options opts;
  opts.num_shards = 7;
  auto store = ShardedStateStore::Open(dir_, 0, opts).TakeValue();
  store->Put("k", "head");
  ASSERT_TRUE(store->Append("k", "+tail").ok());
  auto v = store->Get("k");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "head+tail");
  EXPECT_EQ(store->size(), 1);
}

TEST_F(ShardedStateStoreTest, ShardCountIsStickyAcrossReopen) {
  ShardedStateStore::Options two;
  two.num_shards = 2;
  {
    auto store = ShardedStateStore::Open(dir_, 0, two).TakeValue();
    for (int i = 0; i < 20; ++i) {
      std::string key = "k";
      key += std::to_string(i);
      store->Put(key, "v");
    }
    ASSERT_TRUE(store->Commit(1).ok());
  }
  // Asking for 8 shards on an existing 2-shard layout is an SS3004 error by
  // default: keys are already routed by hash % 2 on disk.
  ShardedStateStore::Options eight;
  eight.num_shards = 8;
  auto blocked = ShardedStateStore::Open(dir_, 1, eight);
  ASSERT_FALSE(blocked.ok());
  EXPECT_NE(blocked.status().message().find("SS3004"), std::string::npos)
      << blocked.status().ToString();
  // Under the migration override the on-disk count is adopted (sticky).
  eight.allow_shard_count_mismatch = true;
  auto store = ShardedStateStore::Open(dir_, 1, eight).TakeValue();
  EXPECT_EQ(store->num_shards(), 2);
  EXPECT_EQ(store->size(), 20);
  EXPECT_EQ(store->loaded_version(), 1);
}

TEST_F(ShardedStateStoreTest, ShardsCheckpointAndRestoreIndependently) {
  ShardedStateStore::Options opts;
  opts.num_shards = 3;
  {
    auto store = ShardedStateStore::Open(dir_, 0, opts).TakeValue();
    store->Put("a", "1");
    store->Put("b", "2");
    store->Put("c", "3");
    ASSERT_TRUE(store->Commit(5).ok());
    store->Put("d", "4");
    ASSERT_TRUE(store->Commit(6).ok());
  }
  // Each shard has its own directory with its own version files.
  for (int s = 0; s < 3; ++s) {
    EXPECT_TRUE(FileExists(dir_ + "/s" + std::to_string(s)));
  }
  // Restoring at 5 must not see the v6 write in any shard.
  auto v5 = ShardedStateStore::Open(dir_, 5, opts).TakeValue();
  EXPECT_EQ(v5->size(), 3);
  EXPECT_FALSE(v5->Get("d").has_value());
  EXPECT_EQ(v5->loaded_version(), 5);
  for (int s = 0; s < v5->num_shards(); ++s) {
    EXPECT_EQ(v5->shard(s)->restored_version(), 5);
  }
  auto v6 = ShardedStateStore::Open(dir_, 6, opts).TakeValue();
  EXPECT_EQ(v6->size(), 4);
  EXPECT_TRUE(v6->Get("d").has_value());
}

TEST_F(ShardedStateStoreTest, TruncateAfterWalksShardDirs) {
  ShardedStateStore::Options opts;
  opts.num_shards = 2;
  {
    auto store = ShardedStateStore::Open(dir_, 0, opts).TakeValue();
    store->Put("a", "1");
    ASSERT_TRUE(store->Commit(1).ok());
    store->Put("b", "2");
    ASSERT_TRUE(store->Commit(2).ok());
    store->Put("c", "3");
    ASSERT_TRUE(store->Commit(3).ok());
  }
  ASSERT_TRUE(ShardedStateStore::TruncateAfter(dir_, 2).ok());
  auto store = ShardedStateStore::Open(dir_, 3, opts).TakeValue();
  EXPECT_EQ(store->loaded_version(), 2) << "v3 files must be gone";
  EXPECT_EQ(store->size(), 2);
}

TEST_F(ShardedStateStoreTest, TruncateAfterFallsBackToFlatLayout) {
  // A pre-sharding checkpoint has version files directly in the partition
  // dir; TruncateAfter must still prune it.
  {
    auto flat = StateStore::Open(dir_, 0).TakeValue();
    flat->Put("a", "1");
    ASSERT_TRUE(flat->Commit(1).ok());
    flat->Put("b", "2");
    ASSERT_TRUE(flat->Commit(2).ok());
  }
  ASSERT_TRUE(ShardedStateStore::TruncateAfter(dir_, 1).ok());
  auto flat = StateStore::Open(dir_, 2).TakeValue();
  EXPECT_EQ(flat->loaded_version(), 1);
}

// ---------------------------------------------------------------------------
// Differential equivalence battery.
// ---------------------------------------------------------------------------

/// Records each epoch's first delivery (sorted) while delegating table
/// semantics to MemorySink, so runs at different shard counts can be
/// compared epoch by epoch, byte for byte.
class EpochRecordingSink : public Sink {
 public:
  bool SupportsMode(OutputMode mode) const override {
    return inner_.SupportsMode(mode);
  }
  Status CommitEpoch(int64_t epoch, OutputMode mode, int num_key_columns,
                     const std::vector<RecordBatchPtr>& batches) override {
    SS_RETURN_IF_ERROR(
        inner_.CommitEpoch(epoch, mode, num_key_columns, batches));
    std::vector<Row> rows;
    for (const auto& b : batches) {
      auto brows = b->ToRows();
      rows.insert(rows.end(), brows.begin(), brows.end());
    }
    std::sort(rows.begin(), rows.end(), RowLess());
    auto it = epochs_.find(epoch);
    if (it != epochs_.end() && it->second != rows) {
      // Recovery replay re-committed this epoch with different rows —
      // re-commits must be byte-identical for idempotent sinks to work.
      ++redelivery_mismatches_;
    }
    epochs_[epoch] = std::move(rows);
    return Status::OK();
  }
  std::vector<Row> SortedSnapshot() const { return inner_.SortedSnapshot(); }
  const std::map<int64_t, std::vector<Row>>& epochs() const { return epochs_; }
  int64_t redelivery_mismatches() const { return redelivery_mismatches_; }

 private:
  MemorySink inner_;
  std::map<int64_t, std::vector<Row>> epochs_;
  int64_t redelivery_mismatches_ = 0;
};

enum class Pipeline { kWindowedAgg, kDedup, kJoin };

struct DifferentialRun {
  std::map<int64_t, std::vector<Row>> epochs;
  std::vector<Row> final_rows;
  int64_t state_rows = 0;   // summed over stateful operators
  int64_t state_bytes = 0;
};

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

SchemaPtr RightSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"rv", TypeId::kInt64, false},
                       {"rtime", TypeId::kTimestamp, false}});
}

/// Deterministic per-round workload, identical across shard counts. Small
/// key domain so keys recur (state updates + dedup hits + join matches);
/// event time advances so windows close and join state evicts.
std::vector<Row> MakeRound(Random* rng, int round, int rows) {
  static const char* kKeys[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                                "zeta", "eta", "theta"};
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t sec = round * 6 + static_cast<int64_t>(rng->Uniform(8));
    out.push_back({Value::Str(kKeys[rng->Uniform(8)]),
                   Value::Int64(static_cast<int64_t>(rng->Uniform(50))),
                   Value::Timestamp(sec * kSec)});
  }
  return out;
}

DifferentialRun RunPipeline(Pipeline pipeline, int num_shards, uint64_t seed,
                            bool restart_midway,
                            TaskScheduler* scheduler = nullptr) {
  DifferentialRun result;
  auto dir = MakeTempDir("sharded_diff");
  EXPECT_TRUE(dir.ok());

  auto left = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
  std::shared_ptr<MemoryStream> right;
  DataFrame df = DataFrame::ReadStream(left);
  OutputMode mode = OutputMode::kAppend;
  switch (pipeline) {
    case Pipeline::kWindowedAgg:
      df = df.WithWatermark("time", 5 * kSec)
               .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                         NamedExpr{Col("k"), "k"}})
               .Agg({SumOf(Col("v"), "total")});
      mode = OutputMode::kUpdate;
      break;
    case Pipeline::kDedup:
      df = df.SelectColumns({"k", "v"}).Distinct();
      mode = OutputMode::kAppend;
      break;
    case Pipeline::kJoin:
      right = std::make_shared<MemoryStream>("right", RightSchema(), 2);
      df = df.WithWatermark("time", 5 * kSec)
               .Join(DataFrame::ReadStream(right).WithWatermark("rtime",
                                                                5 * kSec),
                     {"k"});
      mode = OutputMode::kAppend;
      break;
  }

  auto sink = std::make_shared<EpochRecordingSink>();
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.checkpoint_dir = *dir;
  opts.num_state_shards = num_shards;
  // Sparse checkpoints force the restart below to restore shards AND replay
  // the tail epochs from the WAL — recovery goes through both paths.
  opts.state_checkpoint_interval = 2;
  opts.enable_tracing = false;
  if (scheduler != nullptr) opts.scheduler = scheduler;

  auto query = StreamingQuery::Start(df, sink, opts);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  if (!query.ok()) return result;

  Random left_rng(seed);
  Random right_rng(seed + 1);
  const int kRounds = 6;
  for (int r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(left->AddData(MakeRound(&left_rng, r, 10)).ok());
    if (right != nullptr) {
      // The right stream reuses the 3-column generator; rename is free
      // because MemoryStream only checks arity/types.
      EXPECT_TRUE(right->AddData(MakeRound(&right_rng, r, 10)).ok());
    }
    EXPECT_TRUE((*query)->ProcessAllAvailable().ok());
    if (restart_midway && r == 2) {
      // Simulated crash after three rounds: drop the query, recover from
      // the checkpoint (shards restore independently; epochs past the last
      // interval checkpoint replay from the WAL).
      query->reset();
      query = StreamingQuery::Start(df, sink, opts);
      EXPECT_TRUE(query.ok()) << query.status().ToString();
      if (!query.ok()) return result;
    }
  }

  QueryProgress last;
  EXPECT_TRUE((*query)->GetLastProgress(&last));
  for (const OperatorProgress& op : last.operators) {
    result.state_rows += op.state_rows;
    result.state_bytes += op.state_bytes;
    // Merged accounting: per-shard sizes must sum to the operator totals,
    // and the shard vector must match the configured shard count.
    if (!op.shard_state.empty()) {
      EXPECT_EQ(op.shard_state.size(), static_cast<size_t>(num_shards));
      int64_t rows = 0, bytes = 0;
      for (const auto& [r, b] : op.shard_state) {
        rows += r;
        bytes += b;
      }
      EXPECT_EQ(rows, op.state_rows) << op.name;
      EXPECT_EQ(bytes, op.state_bytes) << op.name;
    }
  }
  EXPECT_EQ(sink->redelivery_mismatches(), 0)
      << "recovery replay re-committed an epoch with different rows";
  result.epochs = sink->epochs();
  result.final_rows = sink->SortedSnapshot();
  query->reset();
  RemoveDirRecursive(*dir).ok();
  return result;
}

void ExpectEquivalent(const DifferentialRun& golden,
                      const DifferentialRun& sharded, int num_shards) {
  SCOPED_TRACE("shards=" + std::to_string(num_shards));
  ASSERT_EQ(sharded.epochs.size(), golden.epochs.size());
  for (const auto& [epoch, golden_rows] : golden.epochs) {
    auto it = sharded.epochs.find(epoch);
    ASSERT_NE(it, sharded.epochs.end()) << "missing epoch " << epoch;
    EXPECT_EQ(it->second, golden_rows) << "epoch " << epoch << " diverged";
  }
  EXPECT_EQ(sharded.final_rows, golden.final_rows);
  // Merged state accounting equals the single-shard run's.
  EXPECT_EQ(sharded.state_rows, golden.state_rows);
  EXPECT_EQ(sharded.state_bytes, golden.state_bytes);
}

class ShardedDifferentialTest
    : public ::testing::TestWithParam<Pipeline> {};

TEST_P(ShardedDifferentialTest, OutputIsByteIdenticalAcrossShardCounts) {
  DifferentialRun golden = RunPipeline(GetParam(), 1, 20260808, false);
  ASSERT_FALSE(golden.epochs.empty());
  for (int shards : {2, 4, 7}) {
    DifferentialRun run = RunPipeline(GetParam(), shards, 20260808, false);
    ExpectEquivalent(golden, run, shards);
  }
}

TEST_P(ShardedDifferentialTest, StagedPathMatchesFusedGolden) {
  // The stateful aggregate has two execution strategies: a fused single
  // pass when partition parallelism saturates the scheduler (the inline
  // golden below), and a staged split/fold when spare cores make per-shard
  // tasks worthwhile. A pool scheduler wider than the partition count
  // forces the staged path — with real cross-thread execution — and the
  // output must still be byte-identical to the fused golden.
  DifferentialRun golden = RunPipeline(GetParam(), 4, 20260810, false);
  ASSERT_FALSE(golden.epochs.empty());
  for (int shards : {1, 4, 7}) {
    PoolScheduler pool(8);  // parallelism 8 > 2 partitions -> staged
    DifferentialRun run = RunPipeline(GetParam(), shards, 20260810, false,
                                      &pool);
    if (shards == 4) {
      ExpectEquivalent(golden, run, shards);
    } else {
      // Different shard counts change the accounting vector but never the
      // rows.
      SCOPED_TRACE("shards=" + std::to_string(shards));
      ASSERT_EQ(run.epochs.size(), golden.epochs.size());
      for (const auto& [epoch, rows] : golden.epochs) {
        auto it = run.epochs.find(epoch);
        ASSERT_NE(it, run.epochs.end()) << "missing epoch " << epoch;
        EXPECT_EQ(it->second, rows) << "epoch " << epoch << " diverged";
      }
      EXPECT_EQ(run.final_rows, golden.final_rows);
      EXPECT_EQ(run.state_rows, golden.state_rows);
      EXPECT_EQ(run.state_bytes, golden.state_bytes);
    }
  }
}

TEST_P(ShardedDifferentialTest, EquivalenceHoldsAcrossRestartRecovery) {
  // Golden run has no restart; sharded runs crash after round 3 and recover
  // (restoring shards independently, replaying the interval tail) — the
  // outputs must still match epoch for epoch.
  DifferentialRun golden = RunPipeline(GetParam(), 1, 20260809, false);
  ASSERT_FALSE(golden.epochs.empty());
  for (int shards : {1, 2, 4, 7}) {
    DifferentialRun run = RunPipeline(GetParam(), shards, 20260809, true);
    ExpectEquivalent(golden, run, shards);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, ShardedDifferentialTest,
                         ::testing::Values(Pipeline::kWindowedAgg,
                                           Pipeline::kDedup,
                                           Pipeline::kJoin),
                         [](const auto& info) {
                           switch (info.param) {
                             case Pipeline::kWindowedAgg: return "WindowedAgg";
                             case Pipeline::kDedup: return "Dedup";
                             case Pipeline::kJoin: return "Join";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace sstreaming

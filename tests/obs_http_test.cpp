#include "obs/http_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>

#include "connectors/memory.h"
#include "exec/query_manager.h"
#include "exec/streaming_query.h"
#include "obs/metrics.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t latency, int64_t time_sec) {
  return {Value::Str(country), Value::Int64(latency),
          Value::Timestamp(time_sec * kSec)};
}

DataFrame WindowedCount(std::shared_ptr<MemoryStream> stream) {
  return DataFrame::ReadStream(stream)
      .WithWatermark("time", 5 * kSec)
      .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "window")})
      .Count();
}

// Parses "name{...,op_id=\"N\",...} value" sample lines for one family into
// op_id -> value.
std::map<int, int64_t> ParseFamilyByOpId(const std::string& text,
                                         const std::string& family) {
  std::map<int, int64_t> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind(family + "{", 0) != 0) continue;
    size_t id = line.find("op_id=\"");
    size_t space = line.rfind(' ');
    if (id == std::string::npos || space == std::string::npos) continue;
    out[std::atoi(line.c_str() + id + 7)] =
        std::atoll(line.c_str() + space + 1);
  }
  return out;
}

void CollectPlanTotals(const Json& node, std::map<int, int64_t>* rows_in,
                       std::map<int, int64_t>* rows_out) {
  (*rows_in)[static_cast<int>(node.Get("opId").int_value())] =
      node.Get("rowsIn").int_value();
  (*rows_out)[static_cast<int>(node.Get("opId").int_value())] =
      node.Get("rowsOut").int_value();
  for (const Json& child : node.Get("children").array_items()) {
    CollectPlanTotals(child, rows_in, rows_out);
  }
}

TEST(HttpServerTest, HealthzAndIndexAndErrors) {
  QueryManager manager;
  ASSERT_TRUE(manager.ServeHttp(0).ok());
  int port = manager.http_port();
  ASSERT_GT(port, 0);

  auto health = HttpGet(port, "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok\n");

  auto index = HttpGet(port, "/");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->status, 200);
  EXPECT_NE(index->body.find("/metrics"), std::string::npos);

  auto missing = HttpGet(port, "/no/such/route");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto parsed = Json::Parse(missing->body);
  ASSERT_TRUE(parsed.ok()) << "errors must be JSON: " << missing->body;
  EXPECT_TRUE(parsed->Get("error").is_string());

  auto no_query = HttpGet(port, "/queries/ghost/plan");
  ASSERT_TRUE(no_query.ok());
  EXPECT_EQ(no_query->status, 404);

  // Starting twice on the same manager is refused.
  EXPECT_FALSE(manager.ServeHttp(0).ok());
  manager.StopHttp();
  EXPECT_EQ(manager.http_port(), 0);
}

TEST(HttpServerTest, NonGetIsMethodNotAllowed) {
  ObservabilityServer server;
  HttpRequest req;
  req.method = "POST";
  req.path = "/metrics";
  EXPECT_EQ(server.Handle(req).status, 405);
}

// Acceptance: with a windowed aggregation running, /metrics reports
// sstreaming_state_bytes > 0 and the /plan row totals match the
// sstreaming_operator_rows_*_total counters in the same scrape.
TEST(HttpServerTest, MetricsAgreeWithPlanProfile) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.num_partitions = 3;
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("windowed", WindowedCount(stream),
                                         sink, opts)
                  .ok());
  ASSERT_TRUE(manager.ServeHttp(0).ok());
  int port = manager.http_port();

  ASSERT_TRUE(stream->AddData({Click("ca", 1, 2), Click("ny", 1, 7)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 16), Click("de", 1, 17)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());

  auto metrics = HttpGet(port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->status, 200);
  std::map<int, int64_t> state_bytes =
      ParseFamilyByOpId(metrics->body, "sstreaming_state_bytes");
  int64_t total_state_bytes = 0;
  for (const auto& [op_id, bytes] : state_bytes) total_state_bytes += bytes;
  EXPECT_GT(total_state_bytes, 0)
      << "windowed state must show up in /metrics:\n"
      << metrics->body;

  auto plan = HttpGet(port, "/queries/windowed/plan");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->status, 200);
  auto plan_json = Json::Parse(plan->body);
  ASSERT_TRUE(plan_json.ok()) << plan->body;
  EXPECT_GT(plan_json->Get("epochs").int_value(), 0);
  EXPECT_NE(plan_json->Get("explain").string_value().find("EXPLAIN ANALYZE"),
            std::string::npos);

  std::map<int, int64_t> plan_rows_in, plan_rows_out;
  CollectPlanTotals(plan_json->Get("root"), &plan_rows_in, &plan_rows_out);
  std::map<int, int64_t> counter_rows_in =
      ParseFamilyByOpId(metrics->body, "sstreaming_operator_rows_in_total");
  std::map<int, int64_t> counter_rows_out =
      ParseFamilyByOpId(metrics->body, "sstreaming_operator_rows_out_total");
  ASSERT_FALSE(plan_rows_in.empty());
  for (const auto& [op_id, rows] : plan_rows_in) {
    ASSERT_TRUE(counter_rows_in.count(op_id)) << "op " << op_id;
    EXPECT_EQ(rows, counter_rows_in[op_id]) << "rows_in of op " << op_id;
  }
  for (const auto& [op_id, rows] : plan_rows_out) {
    ASSERT_TRUE(counter_rows_out.count(op_id)) << "op " << op_id;
    EXPECT_EQ(rows, counter_rows_out[op_id]) << "rows_out of op " << op_id;
  }
  manager.StopHttp();
}

TEST(HttpServerTest, QueriesListDetailAndTrace) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  ASSERT_TRUE(manager.StartQuerySynchronous("counts", df, sink, opts).ok());
  ASSERT_TRUE(manager.ServeHttp(0).ok());
  int port = manager.http_port();

  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ny", 2, 1)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());

  auto list = HttpGet(port, "/queries");
  ASSERT_TRUE(list.ok());
  auto list_json = Json::Parse(list->body);
  ASSERT_TRUE(list_json.ok()) << list->body;
  ASSERT_EQ(list_json->array_items().size(), 1u);
  const Json& entry = list_json->array_items()[0];
  EXPECT_EQ(entry.Get("name").string_value(), "counts");
  EXPECT_EQ(entry.Get("error").string_value(), "");
  EXPECT_GT(entry.Get("lastEpoch").int_value(), 0);
  EXPECT_TRUE(entry.Get("lastProgress").is_object());

  auto detail = HttpGet(port, "/queries/counts");
  ASSERT_TRUE(detail.ok());
  auto detail_json = Json::Parse(detail->body);
  ASSERT_TRUE(detail_json.ok()) << detail->body;
  ASSERT_TRUE(detail_json->Get("progress").is_array());
  EXPECT_GE(detail_json->Get("progress").array_items().size(), 1u);

  auto trace = HttpGet(port, "/queries/counts/trace");
  ASSERT_TRUE(trace.ok());
  ASSERT_EQ(trace->status, 200);
  auto trace_json = Json::Parse(trace->body);
  ASSERT_TRUE(trace_json.ok()) << trace->body;
  EXPECT_TRUE(trace_json->Get("traceEvents").is_array());

  // After StopQuery the endpoints 404 instead of touching freed memory.
  ASSERT_TRUE(manager.StopQuery("counts").ok());
  auto gone = HttpGet(port, "/queries/counts");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->status, 404);
}

TEST(HttpServerTest, MountsIndividualQueryWithoutManager) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  auto query = StreamingQuery::Start(DataFrame::ReadStream(stream), sink,
                                     opts);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  ObservabilityServer server;
  server.MountQuery("solo", query->get());
  ASSERT_TRUE(server.Start(0).ok());
  auto plan = HttpGet(server.port(), "/queries/solo/plan");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->status, 200);
  auto metrics = HttpGet(server.port(), "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->body.find("sstreaming_rows_read_total"),
            std::string::npos)
      << metrics->body;
  server.Stop();
}

// Scrape-under-load: four client threads hammer /metrics and /plan while
// the query keeps executing epochs. Run under TSan this is the data-race
// certification for the whole read path (progress ring, plan profile,
// metrics registry, state-size accounting).
TEST(HttpServerTest, ConcurrentScrapeUnderLoad) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.num_partitions = 3;
  opts.trigger = Trigger::ProcessingTime(1000);  // 1ms
  ASSERT_TRUE(
      manager.StartQuery("load", WindowedCount(stream), sink, opts).ok());
  ASSERT_TRUE(manager.ServeHttp(0).ok());
  int port = manager.http_port();

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/queries/load/plan", "/queries",
                         "/queries/load"};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      while (!done.load()) {
        auto resp = HttpGet(port, paths[t]);
        if (!resp.ok() || resp->status != 200) failures.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        stream->AddData({Click("ca", i, i), Click("ny", i, i + 3)}).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  done.store(true);
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0);
  manager.StopAll();
  manager.StopHttp();
}

}  // namespace
}  // namespace sstreaming

#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "connectors/memory.h"
#include "logical/dataframe.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"a", TypeId::kInt64, false},
                       {"b", TypeId::kInt64, false},
                       {"s", TypeId::kString, true},
                       {"ts", TypeId::kTimestamp, false}});
}

DataFrame StreamDf() {
  auto source = std::make_shared<MemoryStream>("events", EventSchema(), 2);
  return DataFrame::ReadStream(source);
}

// Walks the plan to find the first node of a kind (preorder).
const LogicalPlan* FindNode(const PlanPtr& plan, LogicalPlan::Kind kind) {
  if (plan->kind() == kind) return plan.get();
  for (const PlanPtr& c : plan->children()) {
    if (const LogicalPlan* found = FindNode(c, kind)) return found;
  }
  return nullptr;
}

TEST(OptimizerTest, FoldConstantsFoldsLiteralSubtrees) {
  int folded = 0;
  ExprPtr e = FoldConstants(Add(Lit(2), Mul(Lit(3), Lit(4))), &folded);
  ASSERT_EQ(e->kind(), Expr::Kind::kLiteral);
  EXPECT_EQ(static_cast<const LiteralExpr&>(*e).value(), Value::Int64(14));
  EXPECT_GE(folded, 1);
}

TEST(OptimizerTest, FoldConstantsKeepsColumnRefs) {
  int folded = 0;
  ExprPtr e = FoldConstants(Add(Col("a"), Add(Lit(1), Lit(2))), &folded);
  ASSERT_EQ(e->kind(), Expr::Kind::kBinary);
  const auto& b = static_cast<const BinaryExpr&>(*e);
  EXPECT_EQ(b.right()->kind(), Expr::Kind::kLiteral);
}

TEST(OptimizerTest, FoldConstantsNeverTouchesUdfs) {
  int calls = 0;
  ScalarFn fn = [&calls](const std::vector<Value>&) -> Result<Value> {
    ++calls;
    return Value::Int64(1);
  };
  int folded = 0;
  ExprPtr e = FoldConstants(Udf("f", fn, TypeId::kInt64, {Lit(1)}), &folded);
  EXPECT_EQ(e->kind(), Expr::Kind::kUdf);
  EXPECT_EQ(calls, 0) << "optimizer must not execute user code";
}

TEST(OptimizerTest, MergesAdjacentFilters) {
  DataFrame df = StreamDf()
                     .Where(Gt(Col("a"), Lit(1)))
                     .Where(Lt(Col("b"), Lit(10)));
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_GE(stats.filters_merged, 1);
  // Exactly one filter remains.
  int filters = 0;
  std::function<void(const PlanPtr&)> count = [&](const PlanPtr& p) {
    if (p->kind() == LogicalPlan::Kind::kFilter) ++filters;
    for (const auto& c : p->children()) count(c);
  };
  count(opt);
  EXPECT_EQ(filters, 1);
}

TEST(OptimizerTest, PushesFilterThroughProject) {
  DataFrame df = StreamDf()
                     .Select({As(Col("a"), "x"), As(Col("s"), "name")})
                     .Where(Gt(Col("x"), Lit(5)));
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_GE(stats.predicates_pushed, 1);
  // Filter now sits below the project, referencing the underlying column.
  ASSERT_EQ(opt->kind(), LogicalPlan::Kind::kProject);
  ASSERT_EQ(opt->children()[0]->kind(), LogicalPlan::Kind::kFilter);
  const auto& filter =
      static_cast<const FilterNode&>(*opt->children()[0]);
  std::vector<std::string> refs;
  filter.predicate()->CollectColumnRefs(&refs);
  ASSERT_EQ(refs.size(), 1u);
  EXPECT_EQ(refs[0], "a");
  // Optimized plan still analyzes and produces the same schema.
  auto reanalyzed = Analyzer::Analyze(opt);
  ASSERT_TRUE(reanalyzed.ok()) << reanalyzed.status().ToString();
  auto original = Analyzer::Analyze(df.plan()).TakeValue();
  EXPECT_TRUE((*reanalyzed)->schema()->Equals(*original->schema()));
}

TEST(OptimizerTest, DoesNotPushFilterThroughUdfProjection) {
  ScalarFn fn = [](const std::vector<Value>& args) -> Result<Value> {
    return args[0];
  };
  DataFrame df = StreamDf()
                     .Select({As(Udf("f", fn, TypeId::kInt64, {Col("a")}),
                                 "x")})
                     .Where(Gt(Col("x"), Lit(5)));
  PlanPtr opt = Optimizer::Optimize(df.plan());
  // Filter stays above the project (UDF must not be duplicated/moved).
  EXPECT_EQ(opt->kind(), LogicalPlan::Kind::kFilter);
}

TEST(OptimizerTest, PushesFilterThroughWatermark) {
  DataFrame df = StreamDf()
                     .WithWatermark("ts", 1000)
                     .Where(Gt(Col("a"), Lit(0)));
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_EQ(opt->kind(), LogicalPlan::Kind::kWithWatermark);
  EXPECT_EQ(opt->children()[0]->kind(), LogicalPlan::Kind::kFilter);
}

TEST(OptimizerTest, PushesFilterIntoJoinSide) {
  auto right = DataFrame::FromRows(
                   Schema::Make({{"k", TypeId::kInt64, false},
                                 {"tag", TypeId::kString, false}}),
                   {{Value::Int64(1), Value::Str("x")}})
                   .TakeValue();
  DataFrame df = StreamDf()
                     .Join(right, {Col("a")}, {Col("k")})
                     .Where(Eq(Col("tag"), Lit("x")));
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_GE(stats.predicates_pushed, 1);
  ASSERT_EQ(opt->kind(), LogicalPlan::Kind::kJoin);
  EXPECT_EQ(opt->children()[1]->kind(), LogicalPlan::Kind::kFilter);
}

TEST(OptimizerTest, RemovesTrueFilter) {
  DataFrame df = StreamDf().Where(Lit(true));
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_EQ(opt->kind(), LogicalPlan::Kind::kStreamScan);
  EXPECT_GE(stats.trivial_filters_removed, 1);
}

TEST(OptimizerTest, FoldsFilterConstantThenRemoves) {
  // (1 < 2) folds to true, then the filter disappears.
  DataFrame df = StreamDf().Where(Lt(Lit(1), Lit(2)));
  PlanPtr opt = Optimizer::Optimize(df.plan());
  EXPECT_EQ(opt->kind(), LogicalPlan::Kind::kStreamScan);
}

TEST(OptimizerTest, CollapsesProjectPair) {
  DataFrame df = StreamDf()
                     .Select({As(Add(Col("a"), Col("b")), "sum"),
                              As(Col("s"), "s")})
                     .Select({As(Mul(Col("sum"), Lit(2)), "twice")});
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_GE(stats.projects_collapsed, 1);
  ASSERT_EQ(opt->kind(), LogicalPlan::Kind::kProject);
  // The child is the scan, possibly behind the column-pruning projection
  // the scan-prune pass inserts (a, b are needed; s, ts are not).
  const PlanPtr& child = opt->children()[0];
  if (child->kind() == LogicalPlan::Kind::kProject) {
    EXPECT_GE(stats.scans_pruned, 1);
    EXPECT_EQ(child->children()[0]->kind(), LogicalPlan::Kind::kStreamScan);
  } else {
    EXPECT_EQ(child->kind(), LogicalPlan::Kind::kStreamScan);
  }
  auto analyzed = Analyzer::Analyze(opt);
  ASSERT_TRUE(analyzed.ok());
  EXPECT_EQ((*analyzed)->schema()->ToString(), "(twice: int64?)");
}

TEST(OptimizerTest, PrunesUnusedScanColumns) {
  // Aggregation needs only (a, ts); s and b should be pruned at the scan.
  DataFrame df = StreamDf()
                     .Where(Gt(Col("a"), Lit(0)))
                     .GroupBy({"a"})
                     .Agg({CountAll("n")});
  Optimizer::Stats stats;
  PlanPtr opt = Optimizer::Optimize(df.plan(), &stats);
  EXPECT_GE(stats.scans_pruned, 1);
  auto analyzed = Analyzer::Analyze(opt);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ((*analyzed)->schema()->ToString(), "(a: int64?, n: int64?)");
}

TEST(OptimizerTest, OptimizedStreamingPlanStillValidates) {
  DataFrame df = StreamDf()
                     .WithWatermark("ts", 1000)
                     .Where(Gt(Col("a"), Lit(0)))
                     .GroupBy({As(TumblingWindow(Col("ts"), 10000), "w")})
                     .Count();
  PlanPtr opt = Optimizer::Optimize(df.plan());
  auto analyzed = Analyzer::Analyze(opt);
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_TRUE(ValidateStreamingQuery(*analyzed, OutputMode::kAppend).ok());
}

}  // namespace
}  // namespace sstreaming

#include <gtest/gtest.h>

#include "common/clock.h"
#include "connectors/bus_connectors.h"
#include "connectors/file_connectors.h"
#include "connectors/memory.h"
#include "connectors/rate_source.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr TwoColSchema() {
  return Schema::Make(
      {{"k", TypeId::kString, true}, {"v", TypeId::kInt64, true}});
}

TEST(MemoryStreamTest, RoundRobinAcrossPartitions) {
  MemoryStream s("m", TwoColSchema(), 2);
  ASSERT_TRUE(s.AddData({{Value::Str("a"), Value::Int64(1)},
                         {Value::Str("b"), Value::Int64(2)},
                         {Value::Str("c"), Value::Int64(3)}})
                  .ok());
  auto offsets = s.LatestOffsets();
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ((*offsets)[0], 2);
  EXPECT_EQ((*offsets)[1], 1);
  auto batch = s.ReadPartition(0, 0, 2);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)->num_rows(), 2);
  EXPECT_EQ((*batch)->RowAt(0)[0], Value::Str("a"));
  EXPECT_EQ((*batch)->RowAt(1)[0], Value::Str("c"));
}

TEST(MemoryStreamTest, ArityChecked) {
  MemoryStream s("m", TwoColSchema(), 1);
  EXPECT_FALSE(s.AddData({{Value::Str("a")}}).ok());
}

TEST(MemorySinkTest, AppendIdempotentByEpoch) {
  MemorySink sink;
  auto batch = RecordBatch::FromRows(TwoColSchema(),
                                     {{Value::Str("a"), Value::Int64(1)}})
                   .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kAppend, 0, {batch}).ok());
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kAppend, 0, {batch}).ok());
  EXPECT_EQ(sink.Snapshot().size(), 1u) << "re-commit must not duplicate";
}

TEST(MemorySinkTest, UpdateUpsertsByKey) {
  MemorySink sink;
  auto b1 = RecordBatch::FromRows(TwoColSchema(),
                                  {{Value::Str("a"), Value::Int64(1)},
                                   {Value::Str("b"), Value::Int64(1)}})
                .TakeValue();
  auto b2 = RecordBatch::FromRows(TwoColSchema(),
                                  {{Value::Str("a"), Value::Int64(5)}})
                .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kUpdate, 1, {b1}).ok());
  ASSERT_TRUE(sink.CommitEpoch(2, OutputMode::kUpdate, 1, {b2}).ok());
  auto rows = sink.SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Int64(5));  // a upserted
  EXPECT_EQ(rows[1][1], Value::Int64(1));  // b unchanged
}

TEST(MemorySinkTest, UpdateRequiresKeys) {
  MemorySink sink;
  auto b = RecordBatch::FromRows(TwoColSchema(),
                                 {{Value::Str("a"), Value::Int64(1)}})
               .TakeValue();
  EXPECT_FALSE(sink.CommitEpoch(1, OutputMode::kUpdate, 0, {b}).ok());
}

TEST(MemorySinkTest, CompleteReplacesTable) {
  MemorySink sink;
  auto b1 = RecordBatch::FromRows(TwoColSchema(),
                                  {{Value::Str("a"), Value::Int64(1)},
                                   {Value::Str("b"), Value::Int64(2)}})
                .TakeValue();
  auto b2 = RecordBatch::FromRows(TwoColSchema(),
                                  {{Value::Str("a"), Value::Int64(9)}})
                .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kComplete, 0, {b1}).ok());
  ASSERT_TRUE(sink.CommitEpoch(2, OutputMode::kComplete, 0, {b2}).ok());
  EXPECT_EQ(sink.Snapshot().size(), 1u);
  // Stale re-commit of epoch 1 (recovery) does not clobber epoch 2.
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kComplete, 0, {b1}).ok());
  EXPECT_EQ(sink.Snapshot().size(), 1u);
  EXPECT_EQ(sink.last_committed_epoch(), 2);
}

TEST(BusConnectorsTest, SourceReadsTopic) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("in", 2).ok());
  ASSERT_TRUE(bus.Append("in", 0, {Value::Str("x"), Value::Int64(1)}).ok());
  ASSERT_TRUE(bus.Append("in", 1, {Value::Str("y"), Value::Int64(2)}).ok());
  BusSource source(&bus, "in", TwoColSchema());
  EXPECT_EQ(source.num_partitions(), 2);
  auto offsets = source.LatestOffsets();
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ((*offsets)[0], 1);
  auto batch = source.ReadPartition(1, 0, 1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)->RowAt(0)[0], Value::Str("y"));
}

TEST(BusConnectorsTest, SinkWritesAndSuppressesRecommit) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("out", 2).ok());
  BusSink sink(&bus, "out");
  auto b = RecordBatch::FromRows(TwoColSchema(),
                                 {{Value::Str("a"), Value::Int64(1)},
                                  {Value::Str("b"), Value::Int64(2)}})
               .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kAppend, 0, {b}).ok());
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kAppend, 0, {b}).ok());
  EXPECT_EQ(*bus.TotalRecords("out"), 2);
}

class FileConnectorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_fileconn_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }
  std::string dir_;
};

TEST_F(FileConnectorsTest, ParseLine) {
  auto schema = TwoColSchema();
  auto row = JsonFileSource::ParseLine(*schema, R"({"k":"a","v":3})");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0], Value::Str("a"));
  EXPECT_EQ((*row)[1], Value::Int64(3));
  // Missing and mistyped fields become NULL, not errors (paper §7.2).
  row = JsonFileSource::ParseLine(*schema, R"({"k":"a","v":"oops"})");
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[1].is_null());
  row = JsonFileSource::ParseLine(*schema, R"({"other":1})");
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE((*row)[0].is_null());
  // Whole-line garbage is an error.
  EXPECT_FALSE(JsonFileSource::ParseLine(*schema, "not json").ok());
}

TEST_F(FileConnectorsTest, SourceOffsetsSpanFiles) {
  ASSERT_TRUE(EnsureDir(dir_ + "/in").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/in/01.jsonl",
                              "{\"k\":\"a\",\"v\":1}\n{\"k\":\"b\",\"v\":2}\n")
                  .ok());
  ASSERT_TRUE(
      WriteFileAtomic(dir_ + "/in/02.jsonl", "{\"k\":\"c\",\"v\":3}\n").ok());
  JsonFileSource source(dir_ + "/in", TwoColSchema());
  auto offsets = source.LatestOffsets();
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ((*offsets)[0], 3);
  auto batch = source.ReadPartition(0, 1, 3);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ((*batch)->num_rows(), 2);
  EXPECT_EQ((*batch)->RowAt(0)[0], Value::Str("b"));
  EXPECT_EQ((*batch)->RowAt(1)[0], Value::Str("c"));
  // New files extend the stream; old offsets stay valid (replayability).
  ASSERT_TRUE(
      WriteFileAtomic(dir_ + "/in/03.jsonl", "{\"k\":\"d\",\"v\":4}\n").ok());
  EXPECT_EQ((*source.LatestOffsets())[0], 4);
  auto again = source.ReadPartition(0, 1, 3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->RowAt(0)[0], Value::Str("b"));
}

TEST_F(FileConnectorsTest, SinkWritesEpochFilesIdempotently) {
  JsonFileSink sink(dir_ + "/out");
  auto schema = TwoColSchema();
  auto b = RecordBatch::FromRows(schema, {{Value::Str("a"), Value::Int64(1)}})
               .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(3, OutputMode::kAppend, 0, {b}).ok());
  ASSERT_TRUE(sink.CommitEpoch(3, OutputMode::kAppend, 0, {b}).ok());
  auto rows = sink.ReadAll(*schema);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
  auto epochs = sink.ListEpochs();
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(*epochs, std::vector<int64_t>{3});
}

TEST_F(FileConnectorsTest, SinkCompleteModeKeepsOneFile) {
  JsonFileSink sink(dir_ + "/out");
  auto schema = TwoColSchema();
  auto b1 = RecordBatch::FromRows(schema,
                                  {{Value::Str("a"), Value::Int64(1)}})
                .TakeValue();
  auto b2 = RecordBatch::FromRows(schema,
                                  {{Value::Str("a"), Value::Int64(2)},
                                   {Value::Str("b"), Value::Int64(3)}})
                .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(1, OutputMode::kComplete, 0, {b1}).ok());
  ASSERT_TRUE(sink.CommitEpoch(2, OutputMode::kComplete, 0, {b2}).ok());
  auto epochs = sink.ListEpochs();
  ASSERT_TRUE(epochs.ok());
  EXPECT_EQ(*epochs, std::vector<int64_t>{2});
  auto rows = sink.ReadEpoch(*schema, 2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(FileConnectorsTest, SinkRollbackRemovesEpochs) {
  JsonFileSink sink(dir_ + "/out");
  auto schema = TwoColSchema();
  for (int64_t e = 1; e <= 4; ++e) {
    auto b = RecordBatch::FromRows(schema,
                                   {{Value::Str("x"), Value::Int64(e)}})
                 .TakeValue();
    ASSERT_TRUE(sink.CommitEpoch(e, OutputMode::kAppend, 0, {b}).ok());
  }
  ASSERT_TRUE(sink.RemoveEpochsAfter(2).ok());
  EXPECT_EQ(*sink.ListEpochs(), (std::vector<int64_t>{1, 2}));
}

TEST(RateSourceTest, DeterministicAndReplayable) {
  ManualClock clock(0);
  RateSource source("rate", 1000, 2, &clock);
  EXPECT_EQ((*source.LatestOffsets())[0], 0);
  clock.AdvanceMillis(100);  // 100ms at 1000 rows/s = 100 rows
  auto offsets = source.LatestOffsets();
  ASSERT_TRUE(offsets.ok());
  EXPECT_EQ((*offsets)[0] + (*offsets)[1], 100);
  auto b1 = source.ReadPartition(0, 10, 20);
  auto b2 = source.ReadPartition(0, 10, 20);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  ASSERT_EQ((*b1)->num_rows(), 10);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(CompareRows((*b1)->RowAt(i), (*b2)->RowAt(i)), 0);
  }
  // Values are globally unique across partitions.
  EXPECT_EQ((*b1)->RowAt(0)[0], Value::Int64(20));  // offset 10 * 2 parts + 0
}

TEST(RateSourceTest, TimestampsTrackProductionTime) {
  ManualClock clock(0);
  RateSource source("rate", 100, 1, &clock);
  // Record 50 is produced at t = 50/100 s = 500ms.
  EXPECT_EQ(source.TimestampFor(0, 50), 500000);
}

TEST(ForeachSinkTest, CallbackReceivesRows) {
  std::vector<Row> seen;
  int64_t seen_epoch = -1;
  ForeachSink sink([&](int64_t epoch, OutputMode,
                       const std::vector<Row>& rows) -> Status {
    seen_epoch = epoch;
    seen.insert(seen.end(), rows.begin(), rows.end());
    return Status::OK();
  });
  auto b = RecordBatch::FromRows(TwoColSchema(),
                                 {{Value::Str("a"), Value::Int64(1)}})
               .TakeValue();
  ASSERT_TRUE(sink.CommitEpoch(7, OutputMode::kAppend, 0, {b}).ok());
  EXPECT_EQ(seen_epoch, 7);
  ASSERT_EQ(seen.size(), 1u);
}

}  // namespace
}  // namespace sstreaming

// Tests for §6.1's checkpointing flexibility ("checkpoints do not need to
// happen on every epoch") and checkpoint retention: state may lag the sink;
// recovery replays the gap from the write-ahead log; old history can be
// purged without losing recoverability.

#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false}});
}

Row Ev(const char* k, int64_t v) { return {Value::Str(k), Value::Int64(v)}; }

class CheckpointPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("ckpt_policy_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  std::string dir_;
};

TEST_F(CheckpointPolicyTest, LaggingStateCheckpointsRecoverViaReplay) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Agg(
      {SumOf(Col("v"), "total")});
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir_;
  opts.state_checkpoint_interval = 4;  // state lags the sink by up to 3

  auto sink1 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink1, opts).TakeValue();
    for (int e = 1; e <= 6; ++e) {  // state checkpointed only at epoch 4
      ASSERT_TRUE(stream->AddData({Ev("a", e), Ev("b", 1)}).ok());
      ASSERT_TRUE(query->ProcessAllAvailable().ok());
    }
    EXPECT_EQ(query->last_epoch(), 6);
  }
  // Restart: state restores epoch 4, epochs 5-6 replay from the WAL.
  auto sink2 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink2, opts).TakeValue();
    EXPECT_EQ(query->last_epoch(), 6);
    // Replayed epochs re-commit idempotently; then new data keeps counting
    // from the correct totals (1+2+..+6 = 21).
    ASSERT_TRUE(stream->AddData({Ev("a", 9)}).ok());
    ASSERT_TRUE(query->ProcessAllAvailable().ok());
    auto rows = sink2->SortedSnapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], Value::Int64(30)) << "a: 21 + 9";
    EXPECT_EQ(rows[1][1], Value::Int64(6)) << "b: six 1s";
  }
}

TEST_F(CheckpointPolicyTest, NeverCheckpointedStateReplaysEverything) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.checkpoint_dir = dir_;
  opts.state_checkpoint_interval = 100;  // never reached
  auto sink1 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink1, opts).TakeValue();
    for (int e = 1; e <= 3; ++e) {
      ASSERT_TRUE(stream->AddData({Ev("a", e)}).ok());
      ASSERT_TRUE(query->ProcessAllAvailable().ok());
    }
  }
  auto sink2 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink2, opts).TakeValue();
    auto rows = sink2->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], Value::Int64(3)) << "all three epochs replayed";
  }
}

TEST_F(CheckpointPolicyTest, IntervalCheckpointingWritesFewerFiles) {
  auto count_state_files = [&]() {
    int64_t files = 0;
    std::function<void(const std::string&)> walk =
        [&](const std::string& path) {
          auto names = ListDir(path);
          if (names.ok()) files += static_cast<int64_t>(names->size());
        };
    // state/op<N>/p<M>/s<K> three levels down; count leaf files in every
    // shard directory.
    for (int op = 0; op < 8; ++op) {
      for (int p = 0; p < 4; ++p) {
        std::string leaf = dir_ + "/state/op" + std::to_string(op) + "/p" +
                           std::to_string(p);
        if (!FileExists(leaf)) continue;
        for (int s = 0; s < 16; ++s) {
          std::string shard = leaf + "/s" + std::to_string(s);
          if (FileExists(shard)) walk(shard);
        }
      }
    }
    return files;
  };
  auto run = [&](int interval) {
    RemoveDirRecursive(dir_).ok();
    EnsureDir(dir_).ok();
    auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
    DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
    QueryOptions opts;
    opts.mode = OutputMode::kUpdate;
    opts.num_partitions = 2;
    opts.checkpoint_dir = dir_;
    opts.state_checkpoint_interval = interval;
    auto sink = std::make_shared<MemorySink>();
    auto query = StreamingQuery::Start(df, sink, opts).TakeValue();
    for (int e = 1; e <= 12; ++e) {
      EXPECT_TRUE(stream->AddData({Ev("a", e)}).ok());
      EXPECT_TRUE(query->ProcessAllAvailable().ok());
    }
    return count_state_files();
  };
  int64_t every_epoch = run(1);
  int64_t every_fourth = run(4);
  EXPECT_GT(every_epoch, every_fourth)
      << "interval checkpointing must write fewer state files";
}

TEST_F(CheckpointPolicyTest, RetentionPurgesOldHistoryButStaysRecoverable) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.checkpoint_dir = dir_;
  opts.retain_epochs = 3;
  auto sink1 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink1, opts).TakeValue();
    for (int e = 1; e <= 10; ++e) {
      ASSERT_TRUE(stream->AddData({Ev("a", e)}).ok());
      ASSERT_TRUE(query->ProcessAllAvailable().ok());
    }
  }
  // Old WAL entries are gone; recent ones remain.
  auto wal = WriteAheadLog::Open(dir_ + "/wal").TakeValue();
  auto epochs = wal.ListPlannedEpochs().TakeValue();
  ASSERT_FALSE(epochs.empty());
  EXPECT_GE(epochs.front(), 8);
  EXPECT_EQ(epochs.back(), 10);
  // Restart still recovers the full state.
  auto sink2 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink2, opts).TakeValue();
    ASSERT_TRUE(stream->AddData({Ev("a", 11)}).ok());
    ASSERT_TRUE(query->ProcessAllAvailable().ok());
    auto rows = sink2->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], Value::Int64(11));
  }
}

TEST_F(CheckpointPolicyTest, RetentionNeverOutrunsStateCheckpoint) {
  // With interval checkpointing AND retention, purge must stop at the last
  // state checkpoint or recovery would lose the replay window.
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.checkpoint_dir = dir_;
  opts.retain_epochs = 1;              // aggressive purge
  opts.state_checkpoint_interval = 5;  // sparse checkpoints
  auto sink1 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink1, opts).TakeValue();
    for (int e = 1; e <= 8; ++e) {  // last state checkpoint at epoch 5
      ASSERT_TRUE(stream->AddData({Ev("a", e)}).ok());
      ASSERT_TRUE(query->ProcessAllAvailable().ok());
    }
  }
  auto sink2 = std::make_shared<MemorySink>();
  {
    auto query = StreamingQuery::Start(df, sink2, opts).TakeValue();
    ASSERT_TRUE(stream->AddData({Ev("a", 9)}).ok());
    ASSERT_TRUE(query->ProcessAllAvailable().ok());
    auto rows = sink2->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], Value::Int64(9)) << "epochs 6-8 replayed from the "
                                              "retained WAL window";
  }
}

}  // namespace
}  // namespace sstreaming

#include "common/json.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Json::Null().Dump(), "null");
  EXPECT_EQ(Json::Bool(true).Dump(), "true");
  EXPECT_EQ(Json::Bool(false).Dump(), "false");
  EXPECT_EQ(Json::Int(-7).Dump(), "-7");
  EXPECT_EQ(Json::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, StringEscaping) {
  Json j = Json::Str("a\"b\\c\nd\te");
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  auto parsed = Json::Parse(j.Dump());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), "a\"b\\c\nd\te");
}

TEST(JsonTest, ObjectAndArrayRoundTrip) {
  Json obj = Json::Object();
  obj.Set("epoch", Json::Int(12));
  obj.Set("source", Json::Str("kafka"));
  Json offsets = Json::Array();
  offsets.Append(Json::Int(100));
  offsets.Append(Json::Int(250));
  obj.Set("offsets", std::move(offsets));
  obj.Set("committed", Json::Bool(true));

  std::string text = obj.Dump();
  auto parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == obj);
  EXPECT_EQ(parsed->Get("epoch").int_value(), 12);
  EXPECT_EQ(parsed->Get("offsets").array_items()[1].int_value(), 250);
}

TEST(JsonTest, PrettyDumpParses) {
  Json obj = Json::Object();
  obj.Set("a", Json::Int(1));
  Json nested = Json::Object();
  nested.Set("b", Json::Array());
  obj.Set("n", std::move(nested));
  std::string pretty = obj.DumpPretty();
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  auto parsed = Json::Parse(pretty);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(*parsed == obj);
}

TEST(JsonTest, ParseNumbers) {
  auto r = Json::Parse("[1, -2, 3.5, 1e3, 9223372036854775807]");
  ASSERT_TRUE(r.ok());
  const auto& items = r->array_items();
  EXPECT_TRUE(items[0].is_int());
  EXPECT_EQ(items[0].int_value(), 1);
  EXPECT_EQ(items[1].int_value(), -2);
  EXPECT_TRUE(items[2].is_double());
  EXPECT_DOUBLE_EQ(items[2].double_value(), 3.5);
  EXPECT_DOUBLE_EQ(items[3].double_value(), 1000.0);
  EXPECT_EQ(items[4].int_value(), 9223372036854775807LL);
}

TEST(JsonTest, ParseWhitespaceAndNesting) {
  auto r = Json::Parse("  { \"a\" : [ { \"b\" : null } , true ] }  ");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Get("a").array_items()[0].Get("b").is_null());
  EXPECT_TRUE(r->Get("a").array_items()[1].bool_value());
}

TEST(JsonTest, ParseUnicodeEscape) {
  auto r = Json::Parse("\"\\u0041\\u00e9\"");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->string_value(), "A\xc3\xa9");
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());  // trailing garbage
}

TEST(JsonTest, GetOnMissingKeyReturnsNull) {
  Json obj = Json::Object();
  EXPECT_TRUE(obj.Get("nope").is_null());
  EXPECT_FALSE(obj.Has("nope"));
}

TEST(JsonTest, NumericCrossTypeEquality) {
  EXPECT_TRUE(Json::Int(3) == Json::Double(3.0));
  EXPECT_FALSE(Json::Int(3) == Json::Double(3.5));
}

}  // namespace
}  // namespace sstreaming

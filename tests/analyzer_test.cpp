#include "analysis/analyzer.h"

#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "logical/dataframe.h"

namespace sstreaming {
namespace {

constexpr int64_t kSecond = 1000000;

SchemaPtr EventSchema() {
  return Schema::Make({{"user", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"country", TypeId::kString, true},
                       {"time", TypeId::kTimestamp, false}});
}

DataFrame StreamDf() {
  auto source = std::make_shared<MemoryStream>("events", EventSchema(), 2);
  return DataFrame::ReadStream(source);
}

DataFrame StaticDf() {
  return DataFrame::FromRows(
             Schema::Make({{"country", TypeId::kString, false},
                           {"region", TypeId::kString, false}}),
             {{Value::Str("ca"), Value::Str("na")}})
      .TakeValue();
}

TEST(AnalyzerTest, ResolvesSimplePipeline) {
  DataFrame df = StreamDf()
                     .Where(Eq(Col("country"), Lit("ca")))
                     .Select({As(Col("user"), "user"),
                              As(Mul(Col("latency"), Lit(2)), "lat2")});
  auto analyzed = Analyzer::Analyze(df.plan());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ((*analyzed)->schema()->ToString(),
            "(user: string?, lat2: int64?)");
  EXPECT_TRUE((*analyzed)->IsStreaming());
}

TEST(AnalyzerTest, UnknownColumnFails) {
  DataFrame df = StreamDf().Where(Eq(Col("nope"), Lit(1)));
  auto analyzed = Analyzer::Analyze(df.plan());
  ASSERT_FALSE(analyzed.ok());
  EXPECT_TRUE(analyzed.status().IsAnalysisError());
}

TEST(AnalyzerTest, FilterMustBeBoolean) {
  DataFrame df = StreamDf().Where(Add(Col("latency"), Lit(1)));
  EXPECT_FALSE(Analyzer::Analyze(df.plan()).ok());
}

TEST(AnalyzerTest, ProjectRejectsDuplicateNames) {
  DataFrame df = StreamDf().Select(
      {As(Col("user"), "x"), As(Col("country"), "x")});
  EXPECT_FALSE(Analyzer::Analyze(df.plan()).ok());
}

TEST(AnalyzerTest, WithColumnExpandsStar) {
  DataFrame df = StreamDf().WithColumn("lat_ms", Div(Col("latency"),
                                                     Lit(1000)));
  auto analyzed = Analyzer::Analyze(df.plan());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ((*analyzed)->schema()->num_fields(), 5);
  EXPECT_EQ((*analyzed)->schema()->field(4).name, "lat_ms");
  // Replacing an existing column keeps arity.
  DataFrame df2 = StreamDf().WithColumn("latency", Mul(Col("latency"),
                                                       Lit(2)));
  auto analyzed2 = Analyzer::Analyze(df2.plan());
  ASSERT_TRUE(analyzed2.ok());
  EXPECT_EQ((*analyzed2)->schema()->num_fields(), 4);
}

TEST(AnalyzerTest, AggregateSchema) {
  DataFrame df = StreamDf().GroupBy({"country"}).Agg(
      {CountAll("n"), AvgOf(Col("latency"), "avg_latency")});
  auto analyzed = Analyzer::Analyze(df.plan());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ((*analyzed)->schema()->ToString(),
            "(country: string?, n: int64?, avg_latency: float64?)");
}

TEST(AnalyzerTest, WindowedAggregateSchemaHasStartEnd) {
  DataFrame df =
      StreamDf()
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  auto analyzed = Analyzer::Analyze(df.plan());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ((*analyzed)->schema()->ToString(),
            "(window_start: timestamp, window_end: timestamp, "
            "count: int64?)");
}

TEST(AnalyzerTest, WatermarkValidation) {
  EXPECT_TRUE(
      Analyzer::Analyze(StreamDf().WithWatermark("time", kSecond).plan())
          .ok());
  EXPECT_FALSE(
      Analyzer::Analyze(StreamDf().WithWatermark("latency", kSecond).plan())
          .ok());
  EXPECT_FALSE(
      Analyzer::Analyze(StreamDf().WithWatermark("missing", kSecond).plan())
          .ok());
}

TEST(AnalyzerTest, JoinSchemaDropsDuplicateKey) {
  DataFrame joined = StreamDf().Join(StaticDf(), {"country"});
  auto analyzed = Analyzer::Analyze(joined.plan());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  // country appears once; region appended.
  EXPECT_EQ((*analyzed)->schema()->ToString(),
            "(user: string, latency: int64, country: string?, "
            "time: timestamp, region: string?)");
}

TEST(AnalyzerTest, JoinKeyTypeMismatch) {
  DataFrame joined =
      StreamDf().Join(StaticDf(), {Col("latency")}, {Col("country")});
  EXPECT_FALSE(Analyzer::Analyze(joined.plan()).ok());
}

TEST(AnalyzerTest, CollectWatermarkColumns) {
  DataFrame df = StreamDf()
                     .WithWatermark("time", 10 * kSecond)
                     .Where(Eq(Col("country"), Lit("ca")));
  auto wm = CollectWatermarkColumns(df.plan());
  ASSERT_EQ(wm.size(), 1u);
  EXPECT_EQ(wm["time"], 10 * kSecond);
}

// --- Output mode validation (§5.1) ---

TEST(OutputModeTest, AppendWithNonWindowedAggregationRejected) {
  // The paper's canonical example: counts by country can never be final.
  DataFrame df = StreamDf().GroupBy({"country"}).Count();
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  Status s = ValidateStreamingQuery(analyzed, OutputMode::kAppend);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAnalysisError());
  EXPECT_TRUE(ValidateStreamingQuery(analyzed, OutputMode::kUpdate).ok());
  EXPECT_TRUE(ValidateStreamingQuery(analyzed, OutputMode::kComplete).ok());
}

TEST(OutputModeTest, AppendWithWatermarkedWindowAggregationAllowed) {
  DataFrame df =
      StreamDf()
          .WithWatermark("time", 10 * kSecond)
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  EXPECT_TRUE(ValidateStreamingQuery(analyzed, OutputMode::kAppend).ok());
}

TEST(OutputModeTest, AppendWindowWithoutWatermarkRejected) {
  DataFrame df =
      StreamDf()
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  EXPECT_FALSE(ValidateStreamingQuery(analyzed, OutputMode::kAppend).ok());
}

TEST(OutputModeTest, CompleteRequiresAggregation) {
  DataFrame df = StreamDf().Where(Eq(Col("country"), Lit("ca")));
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  Status s = ValidateStreamingQuery(analyzed, OutputMode::kComplete);
  ASSERT_FALSE(s.ok());
  // Map-only queries are fine in append mode.
  EXPECT_TRUE(ValidateStreamingQuery(analyzed, OutputMode::kAppend).ok());
}

TEST(OutputModeTest, TwoStreamingAggregationsRejected) {
  DataFrame df = StreamDf()
                     .GroupBy({"country"})
                     .Count()
                     .GroupBy({"count"})
                     .Agg({CountAll("n")});
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  Status s = ValidateStreamingQuery(analyzed, OutputMode::kUpdate);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnsupportedOperation());
}

TEST(OutputModeTest, SortOnlyInCompleteAfterAggregation) {
  DataFrame agg = StreamDf().GroupBy({"country"}).Count();
  DataFrame sorted = agg.OrderBy({SortKey{Col("count"), false}});
  auto analyzed = Analyzer::Analyze(sorted.plan()).TakeValue();
  EXPECT_TRUE(ValidateStreamingQuery(analyzed, OutputMode::kComplete).ok());
  EXPECT_FALSE(ValidateStreamingQuery(analyzed, OutputMode::kUpdate).ok());
  // Sorting the raw stream is never allowed.
  DataFrame raw_sorted = StreamDf().OrderBy({SortKey{Col("latency"), true}});
  auto analyzed2 = Analyzer::Analyze(raw_sorted.plan()).TakeValue();
  EXPECT_FALSE(
      ValidateStreamingQuery(analyzed2, OutputMode::kComplete).ok());
}

TEST(OutputModeTest, StreamStreamOuterJoinNeedsWatermarks) {
  auto s1 = std::make_shared<MemoryStream>("s1", EventSchema(), 1);
  auto s2 = std::make_shared<MemoryStream>("s2", EventSchema(), 1);
  DataFrame left = DataFrame::ReadStream(s1);
  DataFrame right = DataFrame::ReadStream(s2);

  DataFrame inner = left.Join(right, {"user"});
  auto analyzed = Analyzer::Analyze(inner.plan()).TakeValue();
  EXPECT_TRUE(ValidateStreamingQuery(analyzed, OutputMode::kAppend).ok());

  DataFrame outer = left.Join(right, {"user"}, JoinType::kLeftOuter);
  auto analyzed2 = Analyzer::Analyze(outer.plan()).TakeValue();
  EXPECT_FALSE(ValidateStreamingQuery(analyzed2, OutputMode::kAppend).ok());

  DataFrame outer_wm =
      left.WithWatermark("time", kSecond)
          .Join(right.WithWatermark("time", kSecond), {"user"},
                JoinType::kLeftOuter);
  auto analyzed3 = Analyzer::Analyze(outer_wm.plan()).TakeValue();
  EXPECT_TRUE(ValidateStreamingQuery(analyzed3, OutputMode::kAppend).ok());
}

TEST(OutputModeTest, StreamStaticOuterMustPreserveStream) {
  DataFrame stream = StreamDf();
  DataFrame táble = StaticDf();
  // stream LEFT OUTER static: ok (stream preserved).
  auto ok_plan = Analyzer::Analyze(
                     stream.Join(táble, {"country"}, JoinType::kLeftOuter)
                         .plan())
                     .TakeValue();
  EXPECT_TRUE(ValidateStreamingQuery(ok_plan, OutputMode::kAppend).ok());
  // static LEFT OUTER stream: rejected.
  auto bad_plan = Analyzer::Analyze(
                      táble.Join(stream, {"country"}, JoinType::kLeftOuter)
                          .plan())
                      .TakeValue();
  EXPECT_FALSE(ValidateStreamingQuery(bad_plan, OutputMode::kAppend).ok());
}

TEST(OutputModeTest, BatchPlanRejectedByStreamingValidator) {
  DataFrame df = StaticDf().GroupBy({"region"}).Count();
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  EXPECT_FALSE(ValidateStreamingQuery(analyzed, OutputMode::kUpdate).ok());
}

TEST(OutputModeTest, MapGroupsEventTimeTimeoutNeedsWatermark) {
  SchemaPtr out_schema = Schema::Make({{"user", TypeId::kString, false},
                                       {"events", TypeId::kInt64, false}});
  GroupUpdateFn fn = [](const Row&, const std::vector<Row>&,
                        GroupState*) -> Result<std::vector<Row>> {
    return std::vector<Row>{};
  };
  DataFrame no_wm = StreamDf()
                        .GroupByKey({As(Col("user"), "user")})
                        .FlatMapGroupsWithState(
                            fn, out_schema, GroupStateTimeout::kEventTime);
  auto analyzed = Analyzer::Analyze(no_wm.plan()).TakeValue();
  EXPECT_FALSE(ValidateStreamingQuery(analyzed, OutputMode::kUpdate).ok());

  DataFrame with_wm = StreamDf()
                          .WithWatermark("time", kSecond)
                          .GroupByKey({As(Col("user"), "user")})
                          .FlatMapGroupsWithState(
                              fn, out_schema, GroupStateTimeout::kEventTime);
  auto analyzed2 = Analyzer::Analyze(with_wm.plan()).TakeValue();
  EXPECT_TRUE(ValidateStreamingQuery(analyzed2, OutputMode::kUpdate).ok());
}

}  // namespace
}  // namespace sstreaming

#include "runtime/scheduler.h"

#include <algorithm>
#include <atomic>

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

std::vector<std::function<Status()>> MakeTasks(int n,
                                               std::atomic<int>* counter) {
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < n; ++i) {
    tasks.push_back([counter]() -> Status {
      counter->fetch_add(1);
      return Status::OK();
    });
  }
  return tasks;
}

TEST(InlineSchedulerTest, RunsAllTasksInOrder) {
  InlineScheduler sched;
  std::vector<int> order;
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back([&order, i]() -> Status {
      order.push_back(i);
      return Status::OK();
    });
  }
  ASSERT_TRUE(sched.RunStage("s", std::move(tasks)).ok());
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(InlineSchedulerTest, StopsOnError) {
  InlineScheduler sched;
  std::atomic<int> ran{0};
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([&]() -> Status {
    ran.fetch_add(1);
    return Status::Internal("boom");
  });
  tasks.push_back([&]() -> Status {
    ran.fetch_add(1);
    return Status::OK();
  });
  EXPECT_FALSE(sched.RunStage("s", std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 1);
}

TEST(PoolSchedulerTest, RunsAllTasks) {
  PoolScheduler sched(4);
  std::atomic<int> counter{0};
  ASSERT_TRUE(sched.RunStage("s", MakeTasks(50, &counter)).ok());
  EXPECT_EQ(counter.load(), 50);
  // Stages are reusable.
  ASSERT_TRUE(sched.RunStage("s2", MakeTasks(10, &counter)).ok());
  EXPECT_EQ(counter.load(), 60);
}

TEST(PoolSchedulerTest, ReportsTaskError) {
  PoolScheduler sched(2);
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([]() -> Status { return Status::OK(); });
  tasks.push_back([]() -> Status { return Status::IOError("disk"); });
  Status s = sched.RunStage("s", std::move(tasks));
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
}

TEST(SimClusterTest, VirtualTimeScalesWithCores) {
  // 32 equal tasks on 1 core vs 8 cores: virtual time ~8x smaller.
  auto run = [&](int nodes, int cores) {
    SimClusterScheduler::Options opts;
    opts.num_nodes = nodes;
    opts.cores_per_node = cores;
    opts.task_launch_overhead_nanos = 0;
    // Fixed per-task cost so the measured speedup reflects the list
    // scheduler, not the load on the (shared) test host.
    opts.fixed_task_duration_nanos = 1000000;
    SimClusterScheduler sched(opts);
    std::atomic<int> counter{0};
    std::vector<std::function<Status()>> tasks;
    for (int i = 0; i < 32; ++i) {
      tasks.push_back([&counter]() -> Status {
        counter.fetch_add(1);
        return Status::OK();
      });
    }
    EXPECT_TRUE(sched.RunStage("s", std::move(tasks)).ok());
    EXPECT_EQ(counter.load(), 32);
    return sched.virtual_nanos();
  };
  int64_t serial = run(1, 1);
  int64_t parallel = run(1, 8);
  EXPECT_GT(serial, 0);
  double speedup = static_cast<double>(serial) /
                   static_cast<double>(parallel);
  EXPECT_GT(speedup, 3.0) << "8 simulated cores should be ~8x faster";
  EXPECT_LT(speedup, 24.0);
}

TEST(SimClusterTest, TaskLaunchOverheadCharged) {
  SimClusterScheduler::Options opts;
  opts.num_nodes = 1;
  opts.cores_per_node = 1;
  opts.task_launch_overhead_nanos = 1000000;  // 1ms
  SimClusterScheduler sched(opts);
  std::vector<std::function<Status()>> tasks;
  for (int i = 0; i < 10; ++i) {
    tasks.push_back([]() -> Status { return Status::OK(); });
  }
  ASSERT_TRUE(sched.RunStage("s", std::move(tasks)).ok());
  EXPECT_GE(sched.virtual_nanos(), 10 * 1000000);
}

TEST(SimClusterTest, StragglersSlowTheStage) {
  auto run = [&](double prob, bool speculation) {
    SimClusterScheduler::Options opts;
    opts.num_nodes = 2;
    opts.cores_per_node = 4;
    opts.task_launch_overhead_nanos = 0;
    opts.straggler_probability = prob;
    opts.straggler_factor = 10.0;
    opts.speculation = speculation;
    // Fixed per-task cost: the comparison below is about the *scheduling*
    // policies, and measured wall time under a loaded test host can vary
    // enough across scenarios to drown out the injected stragglers.
    opts.fixed_task_duration_nanos = 1000000;
    opts.seed = 7;
    SimClusterScheduler sched(opts);
    std::vector<std::function<Status()>> tasks;
    for (int i = 0; i < 64; ++i) {
      tasks.push_back([]() -> Status { return Status::OK(); });
    }
    EXPECT_TRUE(sched.RunStage("s", std::move(tasks)).ok());
    return sched;
  };
  auto clean = run(0.0, false);
  auto straggling = run(0.15, false);
  auto speculated = run(0.15, true);
  EXPECT_GT(straggling.stragglers_injected(), 0);
  EXPECT_GT(straggling.virtual_nanos(), clean.virtual_nanos());
  // Speculation recovers most of the loss (paper §6.2).
  EXPECT_LT(speculated.virtual_nanos(), straggling.virtual_nanos());
  EXPECT_GT(speculated.speculative_wins(), 0);
}

TEST(SimClusterTest, TaskFailuresAddRetryCost) {
  SimClusterScheduler::Options opts;
  opts.num_nodes = 1;
  opts.cores_per_node = 4;
  opts.task_failure_probability = 0.5;
  opts.seed = 3;
  SimClusterScheduler sched(opts);
  std::vector<std::function<Status()>> tasks;
  std::atomic<int> counter{0};
  for (int i = 0; i < 40; ++i) {
    tasks.push_back([&counter]() -> Status {
      counter.fetch_add(1);
      return Status::OK();
    });
  }
  ASSERT_TRUE(sched.RunStage("s", std::move(tasks)).ok());
  EXPECT_GT(sched.failures_injected(), 0);
  EXPECT_EQ(counter.load(), 40) << "results remain exact despite injection";
}

}  // namespace
}  // namespace sstreaming

#include "obs/listener.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.h"
#include "connectors/memory.h"
#include "exec/query_manager.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false}});
}

Row Ev(const char* k, int64_t v) { return {Value::Str(k), Value::Int64(v)}; }

/// A sink whose commits start failing after `fail_after` epochs.
class FailingSink : public Sink {
 public:
  explicit FailingSink(int fail_after) : fail_after_(fail_after) {}

  bool SupportsMode(OutputMode) const override { return true; }

  Status CommitEpoch(int64_t, OutputMode, int,
                     const std::vector<RecordBatchPtr>&) override {
    if (++commits_ > fail_after_) {
      return Status::IOError("sink exploded (injected)");
    }
    return Status::OK();
  }

 private:
  int fail_after_;
  int commits_ = 0;
};

TEST(ListenerTest, LifecycleOrderingOnStop) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto listener = std::make_shared<CollectingListener>();
  QueryManager manager;
  manager.AddListener(listener);
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(),
                                         QueryOptions())
                  .ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 1)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Ev("b", 2)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  ASSERT_TRUE(manager.StopQuery("q").ok());

  EXPECT_EQ(listener->Timeline("q"), "started,progress,progress,terminated");
  ASSERT_EQ(listener->started().size(), 1u);
  EXPECT_EQ(listener->started()[0].name, "q");
  ASSERT_EQ(listener->progress().size(), 2u);
  EXPECT_EQ(listener->progress()[0].progress.epoch, 1);
  EXPECT_EQ(listener->progress()[0].progress.rows_read, 1);
  EXPECT_EQ(listener->progress()[1].progress.epoch, 2);
  ASSERT_EQ(listener->terminated().size(), 1u);
  EXPECT_TRUE(listener->terminated()[0].error.ok());  // clean stop
  EXPECT_EQ(listener->terminated()[0].last_epoch, 2);
}

TEST(ListenerTest, TerminatedFiresExactlyOnceAcrossStopAndDestruction) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto listener = std::make_shared<CollectingListener>();
  {
    QueryManager manager;
    manager.AddListener(listener);
    ASSERT_TRUE(manager
                    .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                           std::make_shared<MemorySink>(),
                                           QueryOptions())
                    .ok());
    ASSERT_TRUE(manager.StopQuery("q").ok());
    // Manager destruction (StopAll) must not re-fire termination.
  }
  EXPECT_EQ(listener->Timeline("q"), "started,terminated");
}

TEST(ListenerTest, FailureTerminatesWithError) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto listener = std::make_shared<CollectingListener>();
  QueryManager manager;
  manager.AddListener(listener);
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<FailingSink>(1),
                                         QueryOptions())
                  .ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 1)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());  // epoch 1 commits
  ASSERT_TRUE(stream->AddData({Ev("b", 2)}).ok());
  EXPECT_FALSE(manager.ProcessAllAvailable().ok());  // epoch 2 explodes

  EXPECT_EQ(listener->Timeline("q"), "started,progress,terminated");
  ASSERT_EQ(listener->terminated().size(), 1u);
  EXPECT_FALSE(listener->terminated()[0].error.ok());
  EXPECT_NE(listener->terminated()[0].error.ToString().find("sink exploded"),
            std::string::npos);
  EXPECT_EQ(listener->terminated()[0].last_epoch, 1);
  // Stopping the already-failed query must not fire a second event.
  ASSERT_TRUE(manager.StopQuery("q").ok());
  EXPECT_EQ(listener->terminated().size(), 1u);
}

TEST(ListenerTest, RemoveListenerStopsDelivery) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto listener = std::make_shared<CollectingListener>();
  QueryManager manager;
  manager.AddListener(listener);
  EXPECT_EQ(manager.num_listeners(), 1u);
  manager.RemoveListener(listener.get());
  EXPECT_EQ(manager.num_listeners(), 0u);
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(),
                                         QueryOptions())
                  .ok());
  EXPECT_EQ(listener->Timeline("q"), "");
}

TEST(ListenerTest, StageDurationsSumToEpochDuration) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto listener = std::make_shared<CollectingListener>();
  QueryManager manager;
  manager.AddListener(listener);
  QueryOptions opts;
  auto dir = MakeTempDir("obs_listener_stages").TakeValue();
  opts.checkpoint_dir = dir;  // exercise plan/commit WAL stages too
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(), opts)
                  .ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 1), Ev("b", 2)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Ev("c", 3)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());

  ASSERT_EQ(listener->progress().size(), 2u);
  for (const QueryProgressEvent& event : listener->progress()) {
    const QueryProgress& p = event.progress;
    EXPECT_EQ(p.duration_nanos, p.StageSumNanos()) << "epoch " << p.epoch;
    EXPECT_GE(p.plan_nanos, 0);
    EXPECT_GE(p.source_read_nanos, 0);
    EXPECT_GE(p.exec_nanos, 0);
    EXPECT_GE(p.checkpoint_nanos, 0);
    EXPECT_GE(p.commit_nanos, 0);
    EXPECT_GE(p.other_nanos, 0);
    EXPECT_GT(p.plan_nanos, 0);    // WAL plan write happened
    EXPECT_GT(p.commit_nanos, 0);  // sink + WAL commit happened
  }
  // The second trigger waited (however briefly) after the first.
  EXPECT_GT(listener->progress()[1].progress.trigger_wait_nanos, 0);
  RemoveDirRecursive(dir).ok();
}

TEST(ListenerTest, PerOperatorProgressTracksRows) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto listener = std::make_shared<CollectingListener>();
  QueryManager manager;
  manager.AddListener(listener);
  ASSERT_TRUE(manager
                  .StartQuerySynchronous(
                      "q",
                      DataFrame::ReadStream(stream).Where(
                          Gt(Col("v"), Lit(2))),
                      std::make_shared<MemorySink>(), QueryOptions())
                  .ok());
  ASSERT_TRUE(
      stream->AddData({Ev("a", 1), Ev("b", 3), Ev("c", 5), Ev("d", 2)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());

  auto events = listener->progress();
  ASSERT_EQ(events.size(), 1u);
  const QueryProgress& p = events[0].progress;
  ASSERT_FALSE(p.operators.empty());
  int64_t source_out = 0, filter_in = 0, filter_out = 0;
  for (const OperatorProgress& op : p.operators) {
    if (op.name.rfind("Source", 0) == 0) source_out = op.rows_out;
    if (op.name.rfind("Filter", 0) == 0) {
      filter_in = op.rows_in;
      filter_out = op.rows_out;
    }
    EXPECT_GE(op.cpu_nanos, 0);
  }
  EXPECT_EQ(source_out, 4);
  EXPECT_EQ(filter_in, 4);
  EXPECT_EQ(filter_out, 2);  // v > 2 keeps b and c
  // Per-source progress carries the input attribution.
  ASSERT_EQ(p.sources.size(), 1u);
  EXPECT_EQ(p.sources[0].name, "events");
  EXPECT_EQ(p.sources[0].rows, 4);
  EXPECT_GT(p.sources[0].rows_per_sec, 0.0);
  EXPECT_EQ(p.sources[0].backlog_rows, 0);
}

TEST(ListenerTest, MetricsEventLogAsListener) {
  auto dir = MakeTempDir("obs_eventlog").TakeValue();
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto log = std::make_shared<MetricsEventLog>(dir + "/metrics.jsonl");
  QueryManager manager;
  manager.AddListener(log);
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(),
                                         QueryOptions())
                  .ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 1)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Ev("b", 2), Ev("c", 3)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());

  // Lines appear without any manual Report() call.
  auto events = log->ReadAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].Get("query").string_value(), "q");
  EXPECT_EQ((*events)[0].Get("epoch").int_value(), 1);
  EXPECT_EQ((*events)[1].Get("rowsRead").int_value(), 2);
  // The stage breakdown is part of the event schema.
  EXPECT_TRUE((*events)[0].Has("durations"));
  EXPECT_TRUE((*events)[0].Get("durations").Has("execNanos"));
  EXPECT_TRUE(log->status().ok());
  RemoveDirRecursive(dir).ok();
}

TEST(ListenerTest, MetricsEventLogSurfacesWriteErrors) {
  // A path in a directory that doesn't exist: the open fails, and the
  // failure must surface both from Report() and through status().
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto query = StreamingQuery::Start(DataFrame::ReadStream(stream),
                                     std::make_shared<MemorySink>(),
                                     QueryOptions())
                   .TakeValue();
  ASSERT_TRUE(stream->AddData({Ev("a", 1)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());

  MetricsEventLog log("/nonexistent_dir_for_sure/metrics.jsonl");
  Status s = log.Report("q", *query);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(log.status().ok());

  // The listener path records the same failure in status().
  MetricsEventLog log2("/nonexistent_dir_for_sure/metrics2.jsonl");
  QueryProgressEvent event;
  event.name = "q";
  event.progress.epoch = 1;
  log2.OnQueryProgress(event);
  EXPECT_FALSE(log2.status().ok());
}

TEST(LogContextTest, PrefixesNestAndRestore) {
  EXPECT_EQ(LogContext::Current(), "");
  {
    LogContext outer("etl", 7);
    EXPECT_EQ(LogContext::Current(), "[query=etl epoch=7] ");
    {
      LogContext inner("alerts", 9);
      EXPECT_EQ(LogContext::Current(), "[query=alerts epoch=9] ");
    }
    EXPECT_EQ(LogContext::Current(), "[query=etl epoch=7] ");
  }
  EXPECT_EQ(LogContext::Current(), "");
  // Anonymous queries keep the epoch part only.
  LogContext anon("", 3);
  EXPECT_EQ(LogContext::Current(), "[epoch=3] ");
}

}  // namespace
}  // namespace sstreaming

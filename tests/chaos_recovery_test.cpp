#include "chaos_harness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <sstream>

#include "common/json.h"
#include "common/random.h"
#include "storage/fs.h"
#include "wal/write_ahead_log.h"

namespace sstreaming {
namespace {

/// One stable textual form of a run's observable output, for byte-identical
/// comparison across recovery replays.
std::string SerializeOutput(const ChaosHarness::RunResult& r) {
  std::ostringstream out;
  out << "last_epoch=" << r.last_epoch << "\n";
  for (const auto& [epoch, rows] : r.epochs) {
    out << "epoch " << epoch << "\n";
    for (const Row& row : rows) out << "  " << RowToString(row) << "\n";
  }
  out << "final\n";
  for (const Row& row : r.final_rows) out << "  " << RowToString(row) << "\n";
  return out.str();
}

class ChaosRecoveryTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(ChaosRecoveryTest, FaultFreeBaseline) {
  ChaosHarness harness{ChaosHarness::Options{}};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();
  EXPECT_EQ(golden.crashes, 0);
  EXPECT_GT(golden.last_epoch, 0);
  EXPECT_FALSE(golden.final_rows.empty());
  EXPECT_TRUE(golden.mismatched_epochs.empty());
  // The fault-free run must exercise every durability seam, or the sweep
  // below is vacuous.
  auto names = ChaosHarness::RegisteredFailpoints();
  for (const char* required :
       {"wal.plan.before_write", "wal.commit.before_write", "fs.write",
        "fs.rename", "state.commit.before_write", "sink.commit.before_apply",
        "source.get_batch"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "failpoint never registered: " << required;
  }
}

/// The tentpole sweep: every registered failpoint, crash on hit N for
/// N in {1,2,3}, restart from the checkpoint, and hold the paper's
/// exactly-once invariants against the fault-free run.
TEST_F(ChaosRecoveryTest, SweepEveryFailpoint) {
  ChaosHarness harness{ChaosHarness::Options{}};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();

  auto names = ChaosHarness::RegisteredFailpoints();
  ASSERT_GE(names.size(), 15u) << "durability seams lost instrumentation";
  int scenarios = 0;
  int fired = 0;
  for (const std::string& name : names) {
    for (int hit = 1; hit <= 3; ++hit) {
      SCOPED_TRACE(name + "@" + std::to_string(hit));
      auto chaos = harness.RunWithFault(name, hit);
      Status verdict = ChaosHarness::CheckInvariants(golden, chaos);
      EXPECT_TRUE(verdict.ok())
          << name << "@" << hit << ": " << verdict.ToString()
          << " (crashes=" << chaos.crashes
          << " triggers=" << chaos.triggers << ")";
      ++scenarios;
      if (chaos.triggers > 0) ++fired;
    }
  }
  std::cout << "[ chaos ] " << scenarios << " scenarios, " << fired
            << " with an injected fault" << std::endl;
  // Most scenarios must actually inject something (recovery-only sites may
  // legitimately not fire at low hit counts).
  EXPECT_GE(fired * 2, scenarios);
}

/// Satellite: a torn plan write at the WAL tail must not brick the
/// checkpoint — replay truncates the torn entry, warns, and resumes.
TEST_F(ChaosRecoveryTest, TornWalTailIsRepairedOnRestart) {
  ChaosHarness harness{ChaosHarness::Options{}};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();
  for (int hit = 1; hit <= 4; ++hit) {
    SCOPED_TRACE("fs.write.torn@" + std::to_string(hit));
    auto chaos = harness.RunWithFault("fs.write.torn", hit);
    EXPECT_GE(chaos.crashes, 1);
    Status verdict = ChaosHarness::CheckInvariants(golden, chaos);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  }
}

/// Satellite: recovery is deterministic. Random (failpoint, hit) scenarios
/// under a fixed seed produce byte-identical output when run twice.
TEST_F(ChaosRecoveryTest, PropertyRecoveryIsDeterministic) {
  const uint64_t seed = 20260806;  // fixed: rerun with this seed to debug
  std::cout << "[ property ] seed=" << seed << std::endl;
  RecordProperty("seed", std::to_string(seed));

  ChaosHarness harness{ChaosHarness::Options{}};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();
  auto names = ChaosHarness::RegisteredFailpoints();
  ASSERT_FALSE(names.empty());

  Random rng(seed);
  for (int trial = 0; trial < 8; ++trial) {
    const std::string& name = names[rng.Uniform(names.size())];
    int hit = 1 + static_cast<int>(rng.Uniform(4));
    SCOPED_TRACE("trial " + std::to_string(trial) + ": " + name + "@" +
                 std::to_string(hit) + " seed=" + std::to_string(seed));
    auto first = harness.RunWithFault(name, hit);
    auto second = harness.RunWithFault(name, hit);
    ASSERT_TRUE(first.status.ok()) << first.status.ToString();
    ASSERT_TRUE(second.status.ok()) << second.status.ToString();
    EXPECT_EQ(first.crashes, second.crashes);
    EXPECT_EQ(first.triggers, second.triggers);
    EXPECT_EQ(SerializeOutput(first), SerializeOutput(second));
    EXPECT_EQ(SerializeOutput(first), SerializeOutput(golden));
  }
}

/// Satellite: the per-shard durability seams. The stream-stream join
/// workload grows keyed state through the shard Append fast path, so all
/// three state.shard.* failpoints (checkpoint, restore, append) actually
/// fire; each is swept with crash-restart like the main sweep, and the
/// invariants prove a fault in one shard never corrupts or drops another
/// shard's state — recovery restores every shard to the committed epoch and
/// replayed output stays byte-identical.
TEST_F(ChaosRecoveryTest, ShardSeamSweepUnderJoinWorkload) {
  ChaosHarness::Options opts;
  opts.workload = ChaosHarness::Workload::kJoin;
  ChaosHarness harness{opts};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();
  EXPECT_GT(golden.last_epoch, 0);
  EXPECT_FALSE(golden.final_rows.empty());

  auto names = ChaosHarness::RegisteredFailpoints();
  for (const char* seam :
       {"state.shard.checkpoint", "state.shard.restore",
        "state.shard.append"}) {
    ASSERT_NE(std::find(names.begin(), names.end(), seam), names.end())
        << "shard failpoint never registered: " << seam;
    int fired = 0;
    for (int hit = 1; hit <= 3; ++hit) {
      SCOPED_TRACE(std::string(seam) + "@" + std::to_string(hit));
      auto chaos = harness.RunWithFault(seam, hit);
      Status verdict = ChaosHarness::CheckInvariants(golden, chaos);
      EXPECT_TRUE(verdict.ok())
          << seam << "@" << hit << ": " << verdict.ToString()
          << " (crashes=" << chaos.crashes
          << " triggers=" << chaos.triggers << ")";
      if (chaos.triggers > 0) ++fired;
    }
    // Every shard seam must actually inject under this workload — with
    // 4 shards per store, early hits land mid-shard-group, so a crash
    // leaves some shards checkpointed ahead of the committed epoch and
    // recovery must heal the group.
    EXPECT_GT(fired, 0) << seam << " never fired under the join workload";
  }
}

/// Satellite: the agg workload also sweeps the shard checkpoint/restore
/// seams at a different shard count (7, coprime with partitions and rounds)
/// so uneven shard layouts recover too.
TEST_F(ChaosRecoveryTest, ShardSeamsRecoverAtUnevenShardCount) {
  ChaosHarness::Options opts;
  opts.num_state_shards = 7;
  ChaosHarness harness{opts};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();
  for (const char* seam : {"state.shard.checkpoint", "state.shard.restore"}) {
    for (int hit = 1; hit <= 3; ++hit) {
      SCOPED_TRACE(std::string(seam) + "@" + std::to_string(hit));
      auto chaos = harness.RunWithFault(seam, hit);
      Status verdict = ChaosHarness::CheckInvariants(golden, chaos);
      EXPECT_TRUE(verdict.ok())
          << seam << "@" << hit << ": " << verdict.ToString()
          << " (crashes=" << chaos.crashes
          << " triggers=" << chaos.triggers << ")";
    }
  }
}

/// A fault on the commit record is the classic §6.1 crash window: the epoch
/// executed and the sink saw the data, but the WAL never recorded the
/// commit. Exactly one crash, exactly one replay, no duplicate output.
TEST_F(ChaosRecoveryTest, WalCommitFaultCausesExactlyOneCrash) {
  ChaosHarness harness{ChaosHarness::Options{}};
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();
  auto chaos = harness.RunWithFault("wal.commit.before_write", 2);
  EXPECT_EQ(chaos.triggers, 1);
  EXPECT_EQ(chaos.crashes, 1);
  Status verdict = ChaosHarness::CheckInvariants(golden, chaos);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

}  // namespace
}  // namespace sstreaming

// TSan stress certification for sharded state under real parallelism: an
// 8-shard windowed aggregation runs its shard tasks on a 4-thread
// PoolScheduler while scraper threads hammer /metrics and the EXPLAIN
// ANALYZE plan endpoint (both of which read the per-shard state accounting
// concurrently with the epoch loop that writes it). Built and run in the
// thread-sanitizer leg of the verify recipe (ctest -L tsan-stress); any
// cross-thread access to shard state without synchronization fails the
// whole binary.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "connectors/memory.h"
#include "exec/query_manager.h"
#include "exec/streaming_query.h"
#include "obs/http_server.h"
#include "runtime/scheduler.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t latency, int64_t time_sec) {
  return {Value::Str(country), Value::Int64(latency),
          Value::Timestamp(time_sec * kSec)};
}

TEST(TsanStressTest, ShardedAggUnderPoolSchedulerAndConcurrentScrapes) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  PoolScheduler pool(4);

  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  // Fewer partitions than pool threads forces the staged split/fold path
  // (the one with cross-thread shard tasks); 2x8 shard tasks then race on
  // the 4 pool threads.
  opts.num_partitions = 2;
  opts.num_state_shards = 8;  // shard tasks outnumber pool threads
  opts.scheduler = &pool;
  opts.trigger = Trigger::ProcessingTime(1000);  // 1ms
  DataFrame df = DataFrame::ReadStream(stream)
                     .WithWatermark("time", 5 * kSec)
                     .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                               NamedExpr{Col("country"), "country"}})
                     .Agg({SumOf(Col("latency"), "total")});
  ASSERT_TRUE(manager.StartQuery("stress", df, sink, opts).ok());
  ASSERT_TRUE(manager.ServeHttp(0).ok());
  int port = manager.http_port();
  ASSERT_GT(port, 0);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/queries/stress/plan", "/metrics",
                         "/queries/stress/plan"};
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      while (!done.load()) {
        auto resp = HttpGet(port, paths[t]);
        if (!resp.ok() || resp->status != 200) failures.fetch_add(1);
      }
    });
  }

  // Keys recur (state updates race the scrapes) and time advances (windows
  // close, shard eviction runs) while the scrapers read.
  static const char* kCountries[] = {"ca", "ny", "de", "fr", "jp", "br",
                                     "in", "au", "mx", "se", "pl", "kr"};
  for (int i = 0; i < 40; ++i) {
    std::vector<Row> rows;
    for (int j = 0; j < 12; ++j) {
      rows.push_back(Click(kCountries[(i + j) % 12], i * 12 + j, i + j % 4));
    }
    ASSERT_TRUE(stream->AddData(rows).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  done.store(true);
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0);

  // The shard accounting must actually have been live during the race:
  // /metrics exposes per-shard gauges for the 8 shards.
  auto metrics = HttpGet(port, "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->body.find("sstreaming_state_shard_rows"),
            std::string::npos)
      << metrics->body.substr(0, 2000);
  EXPECT_NE(metrics->body.find("shard=\"7\""), std::string::npos);

  manager.StopAll();
  manager.StopHttp();
  EXPECT_FALSE(sink->SortedSnapshot().empty());
}

}  // namespace
}  // namespace sstreaming

#include "obs/query_history.h"

#include <gtest/gtest.h>

#include <fstream>

#include "chaos_harness.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "obs/http_server.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

std::string TempDir() {
  auto dir = MakeTempDir("sstreaming_history");
  EXPECT_TRUE(dir.ok()) << dir.status().ToString();
  return *dir;
}

QueryProgress MakeProgress(int64_t epoch) {
  QueryProgress p;
  p.epoch = epoch;
  p.rows_read = 10 * epoch;
  p.rows_written = epoch;
  p.duration_nanos = 100;
  p.exec_nanos = 100;
  return p;
}

TEST(QueryHistoryTest, AppendsAndReadsLifecycleEvents) {
  std::string dir = TempDir();
  ManualClock clock(5 * kSec);
  auto log = QueryHistoryLog::Open(dir, &clock);
  ASSERT_TRUE(log.ok()) << log.status().ToString();

  Diagnostic warning;
  warning.code = DiagCode::kUnboundedAggregationState;
  warning.message = "state grows without bound";
  ASSERT_TRUE((*log)->AppendStarted("q", false, {warning}).ok());
  clock.AdvanceMicros(kSec);
  ASSERT_TRUE((*log)->AppendProgress("q", MakeProgress(1)).ok());
  ASSERT_TRUE((*log)->AppendProgress("q", MakeProgress(2)).ok());
  clock.AdvanceMicros(kSec);
  ASSERT_TRUE(
      (*log)->AppendTerminated("q", Status::OK(), 2, PlanProfile{}).ok());
  EXPECT_TRUE((*log)->status().ok());

  auto events = QueryHistoryLog::ReadAll(dir);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 4u);
  EXPECT_EQ((*events)[0].Get("event").string_value(), "started");
  EXPECT_EQ((*events)[0].Get("query").string_value(), "q");
  EXPECT_EQ((*events)[0].Get("timestampMicros").int_value(), 5 * kSec);
  EXPECT_FALSE((*events)[0].Get("recovered").bool_value());
  ASSERT_EQ((*events)[0].Get("planWarnings").array_items().size(), 1u);
  EXPECT_EQ((*events)[1].Get("event").string_value(), "progress");
  EXPECT_EQ((*events)[1].Get("timestampMicros").int_value(), 6 * kSec);
  // Progress lines round-trip through the documented QueryProgress schema.
  auto progress = QueryProgress::FromJson((*events)[1].Get("progress"));
  ASSERT_TRUE(progress.ok()) << progress.status().ToString();
  EXPECT_EQ(progress->epoch, 1);
  EXPECT_EQ((*events)[3].Get("event").string_value(), "terminated");
  EXPECT_EQ((*events)[3].Get("lastEpoch").int_value(), 2);
  EXPECT_EQ((*events)[3].Get("error").string_value(), "");
}

TEST(QueryHistoryTest, ReadAllIsNotFoundWithoutHistory) {
  std::string dir = TempDir();
  auto events = QueryHistoryLog::ReadAll(dir);
  EXPECT_TRUE(events.status().IsNotFound()) << events.status().ToString();
}

TEST(QueryHistoryTest, OpenRepairsTornTail) {
  std::string dir = TempDir();
  ManualClock clock;
  {
    auto log = QueryHistoryLog::Open(dir, &clock);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendStarted("q", false, {}).ok());
    ASSERT_TRUE((*log)->AppendProgress("q", MakeProgress(1)).ok());
  }
  // Simulate a crash mid-append: a partial line with no trailing newline.
  std::string path = QueryHistoryLog::HistoryPath(dir);
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"event":"progress","torn)";
  }
  // Offline readers skip the torn tail without repairing it.
  auto before = QueryHistoryLog::ReadAll(dir);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  EXPECT_EQ(before->size(), 2u);
  // Reopening truncates the tail, and new appends continue a clean log.
  auto log = QueryHistoryLog::Open(dir, &clock);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_TRUE((*log)->AppendProgress("q", MakeProgress(2)).ok());
  auto events = QueryHistoryLog::ReadAll(dir);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 3u);
  auto progress = QueryProgress::FromJson((*events)[2].Get("progress"));
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->epoch, 2);
}

TEST(QueryHistoryTest, InteriorCorruptionSurfacesAsError) {
  std::string dir = TempDir();
  ManualClock clock;
  {
    auto log = QueryHistoryLog::Open(dir, &clock);
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE((*log)->AppendStarted("q", false, {}).ok());
  }
  std::string path = QueryHistoryLog::HistoryPath(dir);
  {
    std::ofstream out(path, std::ios::app);
    out << "not json\n";                        // interior corruption...
    out << R"({"event":"progress"})" << "\n";   // ...because a line follows
  }
  auto events = QueryHistoryLog::ReadAll(dir);
  EXPECT_FALSE(events.ok());
}

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t time_sec) {
  return {Value::Str(country), Value::Timestamp(time_sec * kSec)};
}

DataFrame ClickQuery(const std::shared_ptr<MemoryStream>& stream) {
  return DataFrame::ReadStream(stream)
      .WithWatermark("time", 5 * kSec)
      .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w")})
      .Count();
}

// A checkpointed query writes its lifecycle to the history log without any
// extra wiring, a restart appends a recovered start, and the HTTP endpoint
// serves the accumulated events.
TEST(QueryHistoryTest, QueryLifecycleLandsInHistoryAcrossRestart) {
  std::string dir = TempDir();
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir;
  opts.query_name = "clicks";

  {
    auto sink = std::make_shared<MemorySink>();
    auto query = StreamingQuery::Start(ClickQuery(stream), sink, opts);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE(stream->AddData({Click("ca", 2), Click("ny", 7)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  }  // clean stop appends "terminated"

  auto mid = QueryHistoryLog::ReadAll(dir);
  ASSERT_TRUE(mid.ok()) << mid.status().ToString();
  ASSERT_GE(mid->size(), 3u);
  EXPECT_EQ(mid->front().Get("event").string_value(), "started");
  EXPECT_FALSE(mid->front().Get("recovered").bool_value());
  EXPECT_EQ(mid->back().Get("event").string_value(), "terminated");

  auto sink = std::make_shared<MemorySink>();
  auto query = StreamingQuery::Start(ClickQuery(stream), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("tx", 14)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  auto events = QueryHistoryLog::ReadAll(dir);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  int64_t starts = 0;
  int64_t recovered = 0;
  for (const Json& event : *events) {
    EXPECT_EQ(event.Get("query").string_value(), "clicks");
    if (event.Get("event").string_value() == "started") {
      ++starts;
      if (event.Get("recovered").bool_value()) ++recovered;
    }
  }
  EXPECT_EQ(starts, 2);
  EXPECT_EQ(recovered, 1);

  // The live endpoint serves the same events.
  ObservabilityServer server;
  server.MountQuery("clicks", query->get());
  HttpResponse resp = server.Handle({"GET", "/queries/clicks/history", ""});
  EXPECT_EQ(resp.status, 200);
  auto body = Json::Parse(resp.body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body->Get("name").string_value(), "clicks");
  EXPECT_EQ(body->Get("events").array_items().size(), events->size());

  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

// An ephemeral (no-checkpoint) query has no history to serve.
TEST(QueryHistoryTest, EphemeralQueryHistoryIs404) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(ClickQuery(stream), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ObservabilityServer server;
  server.MountQuery("clicks", query->get());
  HttpResponse resp = server.Handle({"GET", "/queries/clicks/history", ""});
  EXPECT_EQ(resp.status, 404);
}

// The crash-restart case the history log exists for: a fault injected on the
// durability path kills the process mid-run (several times), and afterwards
// the history must still parse end to end, hold at least one started event,
// and reach the engine's final epoch. ChaosHarness::Run checks exactly that
// (CheckHistoryIntegrity) after every run, so one torn-write scenario and
// one error scenario here stand in for the full sweep in chaos_recovery_test.
TEST(QueryHistoryTest, HistorySurvivesCrashRestart) {
  ChaosHarness::Options options;
  ChaosHarness harness(options);
  auto golden = harness.RunFaultFree();
  ASSERT_TRUE(golden.status.ok()) << golden.status.ToString();

  auto torn = harness.RunWithFault("fs.write.torn", 2);
  ASSERT_TRUE(torn.status.ok()) << torn.status.ToString();
  EXPECT_GT(torn.crashes, 0);
  EXPECT_TRUE(ChaosHarness::CheckInvariants(golden, torn).ok());

  auto failed = harness.RunWithFault("wal.commit.before_write", 2);
  ASSERT_TRUE(failed.status.ok()) << failed.status.ToString();
  EXPECT_GT(failed.crashes, 0);
  EXPECT_TRUE(ChaosHarness::CheckInvariants(golden, failed).ok());
}

}  // namespace
}  // namespace sstreaming

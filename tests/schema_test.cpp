#include "types/schema.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

Schema TestSchema() {
  return Schema({{"id", TypeId::kInt64, false},
                 {"name", TypeId::kString, true},
                 {"ts", TypeId::kTimestamp, false}});
}

TEST(SchemaTest, IndexOf) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_fields(), 3);
  EXPECT_EQ(s.IndexOf("id"), 0);
  EXPECT_EQ(s.IndexOf("ts"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
}

TEST(SchemaTest, ResolveErrorsListCandidates) {
  Schema s = TestSchema();
  auto r = s.Resolve("nme");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAnalysisError());
  EXPECT_NE(r.status().message().find("name"), std::string::npos);
}

TEST(SchemaTest, Equals) {
  EXPECT_TRUE(TestSchema().Equals(TestSchema()));
  Schema other({{"id", TypeId::kInt64, false}});
  EXPECT_FALSE(TestSchema().Equals(other));
}

TEST(SchemaTest, ToStringShowsNullability) {
  std::string s = TestSchema().ToString();
  EXPECT_EQ(s, "(id: int64, name: string?, ts: timestamp)");
}

TEST(SchemaTest, JsonRoundTrip) {
  Schema s = TestSchema();
  auto parsed = Schema::FromJson(s.ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Equals(s));
}

TEST(SchemaTest, FromJsonRejectsBadInput) {
  EXPECT_FALSE(Schema::FromJson(Json::Int(3)).ok());
  Json arr = Json::Array();
  Json f = Json::Object();
  f.Set("name", Json::Str("x"));
  f.Set("type", Json::Str("not_a_type"));
  arr.Append(std::move(f));
  EXPECT_FALSE(Schema::FromJson(arr).ok());
}

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(TypeName(TypeId::kInt64), "int64");
  TypeId t;
  EXPECT_TRUE(TypeFromName("timestamp", &t));
  EXPECT_EQ(t, TypeId::kTimestamp);
  EXPECT_FALSE(TypeFromName("decimal", &t));
}

TEST(DataTypeTest, NumericPromotion) {
  EXPECT_TRUE(IsNumeric(TypeId::kInt64));
  EXPECT_TRUE(IsNumeric(TypeId::kTimestamp));
  EXPECT_FALSE(IsNumeric(TypeId::kString));
  EXPECT_EQ(CommonNumericType(TypeId::kInt64, TypeId::kFloat64),
            TypeId::kFloat64);
  EXPECT_EQ(CommonNumericType(TypeId::kInt64, TypeId::kInt64), TypeId::kInt64);
}

}  // namespace
}  // namespace sstreaming

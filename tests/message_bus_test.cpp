#include "bus/message_bus.h"

#include <thread>

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

Row MakeRow(int64_t v) { return {Value::Int64(v)}; }

TEST(MessageBusTest, CreateTopicValidation) {
  MessageBus bus;
  EXPECT_TRUE(bus.CreateTopic("t", 4).ok());
  EXPECT_EQ(bus.CreateTopic("t", 4).code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(bus.CreateTopic("bad", 0).ok());
  EXPECT_TRUE(bus.HasTopic("t"));
  EXPECT_FALSE(bus.HasTopic("nope"));
  EXPECT_EQ(*bus.NumPartitions("t"), 4);
}

TEST(MessageBusTest, AppendAssignsSequentialOffsets) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  EXPECT_EQ(*bus.Append("t", 0, MakeRow(10)), 0);
  EXPECT_EQ(*bus.Append("t", 0, MakeRow(11)), 1);
  EXPECT_EQ(*bus.Append("t", 1, MakeRow(20)), 0);
  EXPECT_EQ(*bus.EndOffset("t", 0), 2);
  EXPECT_EQ(*bus.EndOffset("t", 1), 1);
}

TEST(MessageBusTest, ReadRange) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.Append("t", 0, MakeRow(i)).ok());
  }
  auto rows = bus.Read("t", 0, 3, 7);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);
  EXPECT_EQ((*rows)[0][0], Value::Int64(3));
  EXPECT_EQ((*rows)[3][0], Value::Int64(6));
}

TEST(MessageBusTest, ReadIsReplayable) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.Append("t", 0, MakeRow(i)).ok());
  }
  auto first = bus.Read("t", 0, 0, 5);
  auto second = bus.Read("t", 0, 0, 5);  // same range, same data
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ(CompareRows((*first)[i], (*second)[i]), 0);
  }
}

TEST(MessageBusTest, ReadClampsEnd) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Append("t", 0, MakeRow(1)).ok());
  auto rows = bus.Read("t", 0, 0, 100);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(MessageBusTest, ReadBadStartFails) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  EXPECT_FALSE(bus.Read("t", 0, 5, 10).ok());
  EXPECT_FALSE(bus.Read("t", 0, -1, 1).ok());
}

TEST(MessageBusTest, UnknownTopicOrPartition) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  EXPECT_TRUE(bus.Append("nope", 0, MakeRow(1)).status().IsNotFound());
  EXPECT_FALSE(bus.Append("t", 3, MakeRow(1)).ok());
  EXPECT_FALSE(bus.Read("t", -1, 0, 1).ok());
}

TEST(MessageBusTest, AppendBatchReturnsFirstOffset) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Append("t", 0, MakeRow(0)).ok());
  auto first = bus.AppendBatch("t", 0, {MakeRow(1), MakeRow(2), MakeRow(3)});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*bus.EndOffset("t", 0), 4);
}

TEST(MessageBusTest, EndOffsetsAndTotal) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 3).ok());
  ASSERT_TRUE(bus.Append("t", 0, MakeRow(1)).ok());
  ASSERT_TRUE(bus.Append("t", 2, MakeRow(2)).ok());
  ASSERT_TRUE(bus.Append("t", 2, MakeRow(3)).ok());
  auto ends = bus.EndOffsets("t");
  ASSERT_TRUE(ends.ok());
  EXPECT_EQ(*ends, (std::vector<int64_t>{1, 0, 2}));
  EXPECT_EQ(*bus.TotalRecords("t"), 3);
}

TEST(MessageBusTest, ConcurrentProducersKeepAllRecords) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&bus, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(bus.Append("t", t % 2, MakeRow(t * 10000 + i)).ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(*bus.TotalRecords("t"), kThreads * kPerThread);
  // Per-partition offsets are a total order: all records readable.
  auto p0 = bus.Read("t", 0, 0, *bus.EndOffset("t", 0));
  auto p1 = bus.Read("t", 1, 0, *bus.EndOffset("t", 1));
  EXPECT_EQ(p0->size() + p1->size(),
            static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace sstreaming

#include "expr/aggregate.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

std::vector<AggSpec> AllSpecs() {
  return {CountAll("n"),        CountOf(Col("v"), "cnt"),
          SumOf(Col("v"), "s"), MinOf(Col("v"), "lo"),
          MaxOf(Col("v"), "hi"), AvgOf(Col("v"), "mean")};
}

TEST(AggregateTest, OutputTypes) {
  EXPECT_EQ(*AggOutputType(AggFunc::kCountAll, TypeId::kNull), TypeId::kInt64);
  EXPECT_EQ(*AggOutputType(AggFunc::kSum, TypeId::kInt64), TypeId::kInt64);
  EXPECT_EQ(*AggOutputType(AggFunc::kSum, TypeId::kFloat64),
            TypeId::kFloat64);
  EXPECT_EQ(*AggOutputType(AggFunc::kAvg, TypeId::kInt64), TypeId::kFloat64);
  EXPECT_EQ(*AggOutputType(AggFunc::kMin, TypeId::kString), TypeId::kString);
  EXPECT_FALSE(AggOutputType(AggFunc::kSum, TypeId::kString).ok());
}

TEST(AggregateTest, UpdateAndFinalize) {
  auto specs = AllSpecs();
  Row state = InitAggState(specs);
  EXPECT_EQ(state.size(), 7u);  // avg takes two slots

  auto feed = [&](Value v) {
    Row args(specs.size(), v);
    UpdateAggState(specs, args, &state);
  };
  feed(Value::Int64(10));
  feed(Value::Int64(4));
  feed(Value::Null());
  feed(Value::Int64(7));

  Row out = FinalizeAggState(specs, state);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0], Value::Int64(4));   // count(*) counts nulls
  EXPECT_EQ(out[1], Value::Int64(3));   // count(v) skips nulls
  EXPECT_EQ(out[2], Value::Int64(21));  // sum
  EXPECT_EQ(out[3], Value::Int64(4));   // min
  EXPECT_EQ(out[4], Value::Int64(10));  // max
  EXPECT_DOUBLE_EQ(out[5].float64_value(), 7.0);  // avg
}

TEST(AggregateTest, EmptyStateFinalizes) {
  auto specs = AllSpecs();
  Row state = InitAggState(specs);
  Row out = FinalizeAggState(specs, state);
  EXPECT_EQ(out[0], Value::Int64(0));
  EXPECT_TRUE(out[2].is_null());  // sum of nothing is null
  EXPECT_TRUE(out[5].is_null());  // avg of nothing is null
}

TEST(AggregateTest, MergePartials) {
  auto specs = AllSpecs();
  Row a = InitAggState(specs);
  Row b = InitAggState(specs);
  Row args1(specs.size(), Value::Int64(2));
  Row args2(specs.size(), Value::Int64(8));
  UpdateAggState(specs, args1, &a);
  UpdateAggState(specs, args2, &b);
  MergeAggState(specs, b, &a);
  Row out = FinalizeAggState(specs, a);
  EXPECT_EQ(out[0], Value::Int64(2));
  EXPECT_EQ(out[2], Value::Int64(10));
  EXPECT_EQ(out[3], Value::Int64(2));
  EXPECT_EQ(out[4], Value::Int64(8));
  EXPECT_DOUBLE_EQ(out[5].float64_value(), 5.0);
}

TEST(AggregateTest, MergeWithEmptySide) {
  auto specs = AllSpecs();
  Row a = InitAggState(specs);
  Row b = InitAggState(specs);
  Row args(specs.size(), Value::Int64(5));
  UpdateAggState(specs, args, &b);
  MergeAggState(specs, b, &a);  // empty += nonempty
  Row out = FinalizeAggState(specs, a);
  EXPECT_EQ(out[2], Value::Int64(5));
  Row c = InitAggState(specs);
  MergeAggState(specs, c, &a);  // nonempty += empty
  out = FinalizeAggState(specs, a);
  EXPECT_EQ(out[2], Value::Int64(5));
}

TEST(AggregateTest, FloatSums) {
  std::vector<AggSpec> specs = {SumOf(Col("v"), "s"), AvgOf(Col("v"), "m")};
  Row state = InitAggState(specs);
  UpdateAggState(specs, {Value::Float64(0.5), Value::Float64(0.5)}, &state);
  UpdateAggState(specs, {Value::Int64(2), Value::Int64(2)}, &state);
  Row out = FinalizeAggState(specs, state);
  EXPECT_DOUBLE_EQ(out[0].float64_value(), 2.5);
  EXPECT_DOUBLE_EQ(out[1].float64_value(), 1.25);
}

TEST(AggregateTest, StateRoundTripsThroughRowCodec) {
  auto specs = AllSpecs();
  Row state = InitAggState(specs);
  Row args(specs.size(), Value::Int64(3));
  UpdateAggState(specs, args, &state);
  std::string buf;
  EncodeRow(state, &buf);
  auto decoded = DecodeRow(buf);
  ASSERT_TRUE(decoded.ok());
  Row out1 = FinalizeAggState(specs, state);
  Row out2 = FinalizeAggState(specs, *decoded);
  EXPECT_EQ(CompareRows(out1, out2), 0);
}

TEST(AggregateTest, MinMaxOnStrings) {
  std::vector<AggSpec> specs = {MinOf(Col("v"), "lo"), MaxOf(Col("v"), "hi")};
  Row state = InitAggState(specs);
  for (const char* s : {"pear", "apple", "zebra"}) {
    UpdateAggState(specs, {Value::Str(s), Value::Str(s)}, &state);
  }
  Row out = FinalizeAggState(specs, state);
  EXPECT_EQ(out[0], Value::Str("apple"));
  EXPECT_EQ(out[1], Value::Str("zebra"));
}

}  // namespace
}  // namespace sstreaming

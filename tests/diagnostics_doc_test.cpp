// Doc↔code parity for diagnostic codes: every DiagCode the engine can emit
// has an "### SSxxxx" section in docs/PLAN_DIAGNOSTICS.md, and every SSxxxx
// heading in the doc corresponds to a shipped DiagCode. Catches both halves
// of the usual drift: adding a code without documenting it, and documenting
// a code that was never wired up (or was renumbered — codes are append-only).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "analysis/diagnostics.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

std::string DocPath() {
  return std::string(SSTREAMING_SOURCE_DIR) + "/docs/PLAN_DIAGNOSTICS.md";
}

/// "### SS1234" headings, in document order.
std::set<std::string> DocumentedCodes(const std::string& text) {
  std::set<std::string> codes;
  size_t pos = 0;
  while ((pos = text.find("### SS", pos)) != std::string::npos) {
    // Headings must start a line; "### SS" inside prose does not count.
    if (pos != 0 && text[pos - 1] != '\n') {
      pos += 6;
      continue;
    }
    std::string code = text.substr(pos + 4, 6);  // "SS" + 4 digits
    bool valid = code.size() == 6;
    for (size_t i = 2; valid && i < 6; ++i) {
      valid = code[i] >= '0' && code[i] <= '9';
    }
    if (valid) codes.insert(code);
    pos += 6;
  }
  return codes;
}

TEST(DiagnosticsDocTest, EveryCodeIsDocumented) {
  auto text = ReadFile(DocPath());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  std::set<std::string> documented = DocumentedCodes(*text);
  ASSERT_FALSE(documented.empty()) << "no SSxxxx headings parsed from doc";
  for (DiagCode code : AllDiagCodes()) {
    EXPECT_TRUE(documented.count(DiagCodeString(code)) > 0)
        << DiagCodeString(code)
        << " is emitted by the engine but has no section in "
        << "docs/PLAN_DIAGNOSTICS.md";
  }
}

TEST(DiagnosticsDocTest, EveryDocumentedCodeExists) {
  auto text = ReadFile(DocPath());
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  std::set<std::string> shipped;
  for (DiagCode code : AllDiagCodes()) shipped.insert(DiagCodeString(code));
  for (const std::string& code : DocumentedCodes(*text)) {
    EXPECT_TRUE(shipped.count(code) > 0)
        << code << " is documented in docs/PLAN_DIAGNOSTICS.md but the "
        << "engine never emits it (stale section, or AllDiagCodes() was "
        << "not extended)";
  }
}

TEST(DiagnosticsDocTest, AllDiagCodesIsSortedAndUnique) {
  const std::vector<DiagCode>& codes = AllDiagCodes();
  ASSERT_FALSE(codes.empty());
  for (size_t i = 1; i < codes.size(); ++i) {
    EXPECT_LT(static_cast<int>(codes[i - 1]), static_cast<int>(codes[i]))
        << "AllDiagCodes() must stay in ascending numeric order";
  }
  // Family predicate sanity: exactly the 3xxx block is checkpoint-family.
  for (DiagCode code : codes) {
    int v = static_cast<int>(code);
    EXPECT_EQ(IsCheckpointCode(code), v >= 3000 && v < 4000)
        << DiagCodeString(code);
  }
}

}  // namespace
}  // namespace sstreaming

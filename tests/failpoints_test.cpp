#include "testing/failpoints.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"

namespace sstreaming {
namespace {

/// A function with a failpoint site, standing in for a durability seam.
Status GuardedStep() {
  SS_FAILPOINT("test.step");
  return Status::OK();
}

Status OtherStep() {
  SS_FAILPOINT("test.other");
  return Status::OK();
}

class FailpointsTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Instance().DisarmAll(); }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    Failpoints::Instance().set_metrics(nullptr);
  }
};

TEST_F(FailpointsTest, DisarmedSiteIsTransparent) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedStep().ok());
  }
  EXPECT_EQ(Failpoints::Instance().evaluations("test.step"), 0);
}

TEST_F(FailpointsTest, FiresOnNthHitExactlyOnce) {
  FailpointSpec spec;
  spec.hit = 3;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_TRUE(GuardedStep().ok());
  Status st = GuardedStep();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_TRUE(Failpoints::IsInjected(st));
  // Single-shot: evaluation 4+ passes again (so a restarted query makes
  // progress instead of crash-looping).
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_EQ(Failpoints::Instance().evaluations("test.step"), 4);
  EXPECT_EQ(Failpoints::Instance().triggers("test.step"), 1);
}

TEST_F(FailpointsTest, StickyFiresFromNthHitOnward) {
  FailpointSpec spec;
  spec.hit = 2;
  spec.sticky = true;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
  EXPECT_EQ(Failpoints::Instance().triggers("test.step"), 2);
}

TEST_F(FailpointsTest, InjectedStatusCarriesRequestedCode) {
  FailpointSpec spec;
  spec.code = StatusCode::kNotFound;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  Status st = GuardedStep();
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_TRUE(Failpoints::IsInjected(st));
  EXPECT_NE(st.message().find("test.step"), std::string::npos);
}

TEST_F(FailpointsTest, DisarmRestoresFastPath) {
  FailpointSpec spec;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_FALSE(GuardedStep().ok());
  Failpoints::Instance().Disarm("test.step");
  int64_t evals = Failpoints::Instance().evaluations("test.step");
  EXPECT_TRUE(GuardedStep().ok());
  // Disarmed evaluations are not counted: the site's atomic is off.
  EXPECT_EQ(Failpoints::Instance().evaluations("test.step"), evals);
}

TEST_F(FailpointsTest, ArmingOneSiteLeavesOthersAlone) {
  FailpointSpec spec;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_TRUE(OtherStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
}

TEST_F(FailpointsTest, ArmBeforeSiteRegistration) {
  // Arming a name with no executed site yet must work — this is how
  // SSTREAMING_FAILPOINTS reaches sites that only run later.
  FailpointSpec spec;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.late.no_site_yet", spec).ok());
}

TEST_F(FailpointsTest, RearmResetsCounters) {
  FailpointSpec spec;
  spec.hit = 2;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_EQ(Failpoints::Instance().evaluations("test.step"), 0);
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
}

TEST_F(FailpointsTest, RejectsMalformedSpecs) {
  FailpointSpec bad_hit;
  bad_hit.hit = 0;
  EXPECT_FALSE(Failpoints::Instance().Arm("test.step", bad_hit).ok());
  FailpointSpec bad_prob;
  bad_prob.probability = 1.5;
  EXPECT_FALSE(Failpoints::Instance().Arm("test.step", bad_prob).ok());
}

TEST_F(FailpointsTest, ProbabilisticFiringIsSeedDeterministic) {
  auto trace = [&](uint64_t seed) {
    FailpointSpec spec;
    spec.probability = 0.5;
    spec.seed = seed;
    EXPECT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
    std::string bits;
    for (int i = 0; i < 64; ++i) bits += GuardedStep().ok() ? '0' : '1';
    Failpoints::Instance().Disarm("test.step");
    return bits;
  };
  std::string a = trace(7);
  std::string b = trace(7);
  std::string c = trace(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 false-failure odds
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST_F(FailpointsTest, ParseSpecGrammar) {
  auto parsed = Failpoints::ParseSpec("wal.commit.before_write=error@2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->first, "wal.commit.before_write");
  EXPECT_EQ(parsed->second.action, FailpointSpec::Action::kError);
  EXPECT_EQ(parsed->second.code, StatusCode::kIOError);
  EXPECT_EQ(parsed->second.hit, 2);
  EXPECT_FALSE(parsed->second.sticky);

  parsed = Failpoints::ParseSpec("fs.read=notfound@3!");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->second.code, StatusCode::kNotFound);
  EXPECT_EQ(parsed->second.hit, 3);
  EXPECT_TRUE(parsed->second.sticky);

  parsed = Failpoints::ParseSpec("source.get_batch=delay:2500");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->second.action, FailpointSpec::Action::kDelay);
  EXPECT_EQ(parsed->second.delay_micros, 2500);

  parsed = Failpoints::ParseSpec("fs.write.torn=torn");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->second.action, FailpointSpec::Action::kTorn);

  parsed = Failpoints::ParseSpec("test.step=error%0.25~99");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed->second.probability, 0.25);
  EXPECT_EQ(parsed->second.seed, 99u);

  EXPECT_FALSE(Failpoints::ParseSpec("no-equals-sign").ok());
  EXPECT_FALSE(Failpoints::ParseSpec("x=bogusaction").ok());
  EXPECT_FALSE(Failpoints::ParseSpec("x=error@zero").ok());
  EXPECT_FALSE(Failpoints::ParseSpec("=error").ok());
}

TEST_F(FailpointsTest, ArmFromStringArmsEveryEntry) {
  ASSERT_TRUE(Failpoints::Instance()
                  .ArmFromString("test.step=error@2;test.other=aborted")
                  .ok());
  EXPECT_TRUE(GuardedStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
  Status st = OtherStep();
  EXPECT_EQ(st.code(), StatusCode::kAborted);
  EXPECT_FALSE(Failpoints::Instance().ArmFromString("garbage").ok());
}

TEST_F(FailpointsTest, RegisteredNamesIncludesExecutedSites) {
  (void)GuardedStep();
  auto names = Failpoints::Instance().RegisteredNames();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.step"), names.end());
}

TEST_F(FailpointsTest, TriggersExportedThroughMetricsRegistry) {
  MetricsRegistry registry;
  Failpoints::Instance().set_metrics(&registry);
  FailpointSpec spec;
  spec.hit = 1;
  spec.sticky = true;
  ASSERT_TRUE(Failpoints::Instance().Arm("test.step", spec).ok());
  EXPECT_FALSE(GuardedStep().ok());
  EXPECT_FALSE(GuardedStep().ok());
  Counter* c = registry.GetCounter("sstreaming_failpoint_triggers_total",
                                   {{"failpoint", "test.step"}});
  EXPECT_EQ(c->value(), 2);
  Failpoints::Instance().set_metrics(nullptr);
}

TEST_F(FailpointsTest, IsInjectedRejectsOrdinaryErrors) {
  EXPECT_FALSE(Failpoints::IsInjected(Status::OK()));
  EXPECT_FALSE(Failpoints::IsInjected(Status::IOError("disk on fire")));
}

}  // namespace
}  // namespace sstreaming

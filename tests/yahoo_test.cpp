#include "workloads/yahoo.h"

#include <gtest/gtest.h>

#include "baselines/flinksim.h"
#include "baselines/kstreamssim.h"
#include "common/clock.h"
#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "obs/metrics.h"

namespace sstreaming {
namespace {

using Counts = std::map<std::pair<int64_t, int64_t>, int64_t>;

YahooConfig SmallConfig() {
  YahooConfig config;
  config.num_partitions = 4;
  config.num_events = 20000;
  config.num_campaigns = 10;
  config.ads_per_campaign = 5;
  config.event_time_span_seconds = 50;
  return config;
}

struct Generated {
  MessageBus bus;
  std::vector<Row> campaigns;
  std::vector<Row> all_events;
  Counts reference;
};

void Generate(const YahooConfig& config, Generated* g) {
  auto campaigns = GenerateYahooData(&g->bus, "events", config);
  ASSERT_TRUE(campaigns.ok()) << campaigns.status().ToString();
  g->campaigns = *campaigns;
  for (int p = 0; p < config.num_partitions; ++p) {
    auto end = g->bus.EndOffset("events", p);
    ASSERT_TRUE(end.ok());
    auto rows = g->bus.Read("events", p, 0, *end);
    ASSERT_TRUE(rows.ok());
    g->all_events.insert(g->all_events.end(), rows->begin(), rows->end());
  }
  ASSERT_EQ(static_cast<int64_t>(g->all_events.size()), config.num_events);
  g->reference = YahooReferenceCounts(g->all_events, g->campaigns);
  ASSERT_FALSE(g->reference.empty());
}

TEST(YahooWorkloadTest, GeneratorIsDeterministic) {
  Generated g1, g2;
  Generate(SmallConfig(), &g1);
  Generate(SmallConfig(), &g2);
  ASSERT_EQ(g1.all_events.size(), g2.all_events.size());
  for (size_t i = 0; i < g1.all_events.size(); ++i) {
    EXPECT_EQ(CompareRows(g1.all_events[i], g2.all_events[i]), 0);
  }
  EXPECT_EQ(g1.reference, g2.reference);
}

TEST(YahooWorkloadTest, StructuredStreamingMatchesReference) {
  Generated g;
  Generate(SmallConfig(), &g);
  auto source =
      std::make_shared<BusSource>(&g.bus, "events", YahooEventSchema());
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = YahooQuery(source, g.campaigns);
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 4;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  Counts got;
  for (const Row& row : sink->Snapshot()) {
    // (window_start, window_end, campaign_id, count)
    got[{row[2].int64_value(), row[0].int64_value() / 1000000}] =
        row[3].int64_value();
  }
  EXPECT_EQ(got, g.reference);
}

// The tie-out contract on the full Yahoo pipeline: every epoch's
// QueryProgress carries an e2e-latency summary, and merging those summaries
// reproduces the lifetime `sstreaming_e2e_latency_micros` Prometheus
// histogram exactly — same count, same buckets, same p99. A dashboard built
// on either surface reports the same latency.
TEST(YahooWorkloadTest, EndToEndLatencyTiesOutWithPrometheus) {
  constexpr int64_t kSec = 1000000;
  ManualClock clock(1000 * kSec);
  Generated g;
  g.bus.set_ingest_clock(&clock);  // events are ingest-stamped at append
  Generate(SmallConfig(), &g);
  clock.AdvanceMicros(2 * kSec);  // the backlog ages before we consume it

  auto source =
      std::make_shared<BusSource>(&g.bus, "events", YahooEventSchema());
  auto sink = std::make_shared<MemorySink>();
  auto metrics = std::make_shared<MetricsRegistry>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 4;
  opts.clock = &clock;
  opts.metrics = metrics;
  opts.max_records_per_epoch = 4000;  // several epochs over 20000 events
  auto query = StreamingQuery::Start(YahooQuery(source, g.campaigns), sink,
                                     opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  int epochs = 0;
  while (true) {
    auto ran = (*query)->ProcessOneTrigger();
    ASSERT_TRUE(ran.ok()) << ran.status().ToString();
    if (!*ran) break;
    ++epochs;
    clock.AdvanceMicros(kSec / 2);  // spread commit times across buckets
  }
  ASSERT_GE(epochs, 5);

  LogHistogram merged;
  int64_t rows_written = 0;
  for (const QueryProgress& p : (*query)->recent_progress()) {
    EXPECT_FALSE(p.e2e_latency.empty()) << "epoch " << p.epoch;
    p.e2e_latency.MergeInto(&merged);
    rows_written += p.rows_written;
  }
  LogHistogram* lifetime =
      metrics->GetHistogram("sstreaming_e2e_latency_micros");
  ASSERT_NE(lifetime, nullptr);
  ASSERT_GT(lifetime->count(), 0);
  EXPECT_EQ(lifetime->count(), rows_written)
      << "every written row contributes one latency sample";
  EXPECT_EQ(merged.count(), lifetime->count());
  EXPECT_EQ(merged.sum(), lifetime->sum());
  EXPECT_EQ(merged.max(), lifetime->max());
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(merged.bucket_count(i), lifetime->bucket_count(i))
        << "bucket " << i;
  }
  EXPECT_EQ(merged.ValueAtQuantile(0.99), lifetime->ValueAtQuantile(0.99));
  // Latency is bounded below by the 2s the backlog aged before processing.
  EXPECT_GE(merged.ValueAtQuantile(0.50), 2 * kSec);
}

TEST(YahooWorkloadTest, FlinkSimMatchesReference) {
  Generated g;
  Generate(SmallConfig(), &g);
  Counts got;
  for (int p = 0; p < 4; ++p) {
    auto pipeline = flinksim::BuildYahooPipeline(g.campaigns);
    ASSERT_TRUE(pipeline.ok()) << pipeline.status().ToString();
    auto end = g.bus.EndOffset("events", p);
    auto rows = g.bus.Read("events", p, 0, *end);
    ASSERT_TRUE(rows.ok());
    (*pipeline)->ProcessAll(*rows);
    (*pipeline)->Finish();
    auto* counter =
        static_cast<flinksim::WindowCountOperator*>((*pipeline)->last());
    flinksim::MergeYahooCounts(*counter, &got);
  }
  EXPECT_EQ(got, g.reference);
}

TEST(YahooWorkloadTest, KStreamsSimMatchesReference) {
  Generated g;
  Generate(SmallConfig(), &g);
  InlineScheduler scheduler;
  auto result = kstreamssim::RunYahoo(&g.bus, "events", "repartition",
                                      g.campaigns, &scheduler);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->counts, g.reference);
  EXPECT_GT(result->intermediate_records, 0);
}

TEST(YahooWorkloadTest, AllThreeEnginesAgree) {
  // The comparability requirement behind Figure 6a: identical answers.
  Generated g;
  Generate(SmallConfig(), &g);

  // flinksim
  Counts flink;
  for (int p = 0; p < 4; ++p) {
    auto pipeline = flinksim::BuildYahooPipeline(g.campaigns).TakeValue();
    auto rows = g.bus.Read("events", p, 0, *g.bus.EndOffset("events", p));
    pipeline->ProcessAll(*rows);
    auto* counter =
        static_cast<flinksim::WindowCountOperator*>(pipeline->last());
    flinksim::MergeYahooCounts(*counter, &flink);
  }
  // kstreams
  InlineScheduler scheduler;
  auto ks = kstreamssim::RunYahoo(&g.bus, "events", "repartition2",
                                  g.campaigns, &scheduler)
                .TakeValue();
  EXPECT_EQ(flink, ks.counts);
  EXPECT_EQ(flink, g.reference);
}

}  // namespace
}  // namespace sstreaming

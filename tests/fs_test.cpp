#include "storage/fs.h"

#include <gtest/gtest.h>

#include "testing/failpoints.h"

namespace sstreaming {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Instance().DisarmAll();
    auto dir = MakeTempDir("sstreaming_fs_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override {
    Failpoints::Instance().DisarmAll();
    RemoveDirRecursive(dir_).ok();
  }

  void Arm(const std::string& name, StatusCode code = StatusCode::kIOError) {
    FailpointSpec spec;
    spec.code = code;
    ASSERT_TRUE(Failpoints::Instance().Arm(name, spec).ok());
  }

  std::string dir_;
};

TEST_F(FsTest, WriteReadRoundTrip) {
  std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "hello\0world").ok());
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello");  // literal truncates at NUL; use string ctor
  ASSERT_TRUE(WriteFileAtomic(path, std::string("a\0b", 3)).ok());
  data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 3u);
}

TEST_F(FsTest, AtomicWriteReplacesExisting) {
  std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  EXPECT_EQ(*ReadFile(path), "v2");
}

TEST_F(FsTest, AtomicWriteLeavesNoTempFiles) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/a", "x").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/b", "y").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

TEST_F(FsTest, ListDirSorted) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/bbb", "").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/aaa", "").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "aaa");
  EXPECT_EQ((*names)[1], "bbb");
}

TEST_F(FsTest, ListDirSkipsSubdirectories) {
  ASSERT_TRUE(EnsureDir(dir_ + "/sub").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/f", "").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
}

TEST_F(FsTest, ReadMissingFileIsError) {
  EXPECT_FALSE(ReadFile(dir_ + "/missing").ok());
}

TEST_F(FsTest, ListMissingDirIsError) {
  EXPECT_FALSE(ListDir(dir_ + "/missing").ok());
}

TEST_F(FsTest, FileExistsAndRemove) {
  std::string path = dir_ + "/f";
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(RemoveFile(path).ok());
}

TEST_F(FsTest, EnsureDirIsIdempotent) {
  EXPECT_TRUE(EnsureDir(dir_ + "/x/y/z").ok());
  EXPECT_TRUE(EnsureDir(dir_ + "/x/y/z").ok());
}

TEST_F(FsTest, WriteToMissingDirectoryIsError) {
  Status st = WriteFileAtomic(dir_ + "/no/such/dir/f", "x");
  EXPECT_FALSE(st.ok());
  EXPECT_FALSE(Failpoints::IsInjected(st));  // a real error, not a failpoint
}

TEST_F(FsTest, InjectedOpenFailureLeavesNothingBehind) {
  std::string path = dir_ + "/f";
  Arm("fs.open");
  Status st = WriteFileAtomic(path, "x");
  EXPECT_TRUE(Failpoints::IsInjected(st));
  EXPECT_FALSE(FileExists(path));
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_TRUE(names->empty()) << "temp file leaked: " << (*names)[0];
}

TEST_F(FsTest, InjectedWriteFailureCleansUpTempFile) {
  std::string path = dir_ + "/f";
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  Arm("fs.write");
  Status st = WriteFileAtomic(path, "new");
  EXPECT_TRUE(Failpoints::IsInjected(st));
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // The failed write must not disturb the committed file or leave a temp.
  EXPECT_EQ(*ReadFile(path), "old");
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
}

TEST_F(FsTest, InjectedRenameFailureCleansUpTempFile) {
  std::string path = dir_ + "/f";
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  Arm("fs.rename");
  Status st = WriteFileAtomic(path, "new");
  EXPECT_TRUE(Failpoints::IsInjected(st));
  EXPECT_EQ(*ReadFile(path), "old");
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
}

TEST_F(FsTest, InjectedReadFailure) {
  std::string path = dir_ + "/f";
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  Arm("fs.read", StatusCode::kNotFound);
  Status st = ReadFile(path).status();
  EXPECT_TRUE(Failpoints::IsInjected(st));
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(*ReadFile(path), "x");  // single-shot: next read succeeds
}

TEST_F(FsTest, TornWritePublishesTruncatedFileThenFails) {
  std::string path = dir_ + "/f";
  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kTorn;
  ASSERT_TRUE(Failpoints::Instance().Arm("fs.write.torn", spec).ok());
  Status st = WriteFileAtomic(path, "0123456789");
  EXPECT_TRUE(Failpoints::IsInjected(st));
  // Models a filesystem that made the rename durable before the data: the
  // file exists under its final name with only a prefix of the bytes.
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "01234");
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);  // the torn file, and no temp leftovers
}

}  // namespace
}  // namespace sstreaming

#include "storage/fs.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

class FsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_fs_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  std::string dir_;
};

TEST_F(FsTest, WriteReadRoundTrip) {
  std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "hello\0world").ok());
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello");  // literal truncates at NUL; use string ctor
  ASSERT_TRUE(WriteFileAtomic(path, std::string("a\0b", 3)).ok());
  data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 3u);
}

TEST_F(FsTest, AtomicWriteReplacesExisting) {
  std::string path = dir_ + "/file.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "v1").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "v2").ok());
  EXPECT_EQ(*ReadFile(path), "v2");
}

TEST_F(FsTest, AtomicWriteLeavesNoTempFiles) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/a", "x").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/b", "y").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);
}

TEST_F(FsTest, ListDirSorted) {
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/bbb", "").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/aaa", "").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[0], "aaa");
  EXPECT_EQ((*names)[1], "bbb");
}

TEST_F(FsTest, ListDirSkipsSubdirectories) {
  ASSERT_TRUE(EnsureDir(dir_ + "/sub").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/f", "").ok());
  auto names = ListDir(dir_);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 1u);
}

TEST_F(FsTest, ReadMissingFileIsError) {
  EXPECT_FALSE(ReadFile(dir_ + "/missing").ok());
}

TEST_F(FsTest, ListMissingDirIsError) {
  EXPECT_FALSE(ListDir(dir_ + "/missing").ok());
}

TEST_F(FsTest, FileExistsAndRemove) {
  std::string path = dir_ + "/f";
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_TRUE(FileExists(path));
  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(RemoveFile(path).ok());
}

TEST_F(FsTest, EnsureDirIsIdempotent) {
  EXPECT_TRUE(EnsureDir(dir_ + "/x/y/z").ok());
  EXPECT_TRUE(EnsureDir(dir_ + "/x/y/z").ok());
}

}  // namespace
}  // namespace sstreaming

#include "obs/tracer.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"
#include "workloads/yahoo.h"

namespace sstreaming {
namespace {

TEST(EpochTracerTest, RecordsAndSnapshots) {
  EpochTracer tracer;
  tracer.AddSpan("execute", "stage", 1000, 500, 1);
  tracer.AddSpan("commit", "stage", 1500, 100, 1);
  EXPECT_EQ(tracer.span_count(), 2u);
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "execute");
  EXPECT_EQ(spans[0].dur_nanos, 500);
  EXPECT_EQ(spans[1].epoch, 1);
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(EpochTracerTest, CapacityBoundDropsNotGrows) {
  EpochTracer tracer(/*max_spans=*/2);
  tracer.AddSpan("a", "stage", 0, 1, 1);
  tracer.AddSpan("b", "stage", 1, 1, 1);
  tracer.AddSpan("c", "stage", 2, 1, 1);
  EXPECT_EQ(tracer.span_count(), 2u);
  EXPECT_EQ(tracer.dropped(), 1);
}

TEST(EpochTracerTest, ScopedSpanRecordsOnDestruction) {
  EpochTracer tracer;
  {
    ScopedSpan span(&tracer, "work", "stage", 42);
  }
  auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "work");
  EXPECT_EQ(spans[0].epoch, 42);
  EXPECT_GE(spans[0].dur_nanos, 0);
  // Null tracer disables recording without crashing.
  { ScopedSpan disabled(nullptr, "skipped", "stage", 0); }
  EXPECT_EQ(tracer.span_count(), 1u);
}

TEST(EpochTracerTest, ChromeTraceJsonIsWellFormed) {
  EpochTracer tracer;
  tracer.AddSpan("execute", "stage", 2000, 1000, 3);
  Json trace = tracer.ToChromeTrace();
  ASSERT_TRUE(trace.Has("traceEvents"));
  const auto& events = trace.Get("traceEvents").array_items();
  ASSERT_EQ(events.size(), 1u);
  const Json& e = events[0];
  EXPECT_EQ(e.Get("name").string_value(), "execute");
  EXPECT_EQ(e.Get("ph").string_value(), "X");
  EXPECT_DOUBLE_EQ(e.Get("ts").double_value(), 2.0);   // micros
  EXPECT_DOUBLE_EQ(e.Get("dur").double_value(), 1.0);  // micros
  EXPECT_EQ(e.Get("args").Get("epoch").int_value(), 3);
  // The serialized form parses back.
  auto parsed = Json::Parse(tracer.ToChromeTraceJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("traceEvents").array_items().size(), 1u);
}

TEST(EpochTracerTest, WriteChromeTraceToDisk) {
  auto dir = MakeTempDir("obs_trace").TakeValue();
  EpochTracer tracer;
  tracer.AddSpan("execute", "stage", 0, 10, 1);
  ASSERT_TRUE(tracer.WriteChromeTrace(dir + "/trace.json").ok());
  auto text = ReadFile(dir + "/trace.json");
  ASSERT_TRUE(text.ok());
  auto parsed = Json::Parse(*text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("traceEvents").array_items().size(), 1u);
  RemoveDirRecursive(dir).ok();
}

/// The acceptance run: the Yahoo workload (paper §9.1) driven end to end
/// with the full observability stack on, validating the three ISSUE
/// criteria — Prometheus dump with per-operator counters and an epoch
/// histogram whose p50 <= p99, trace spans covering >= 95% of epoch wall
/// time, and per-stage durations summing to the reported epoch duration.
TEST(ObservabilityAcceptanceTest, YahooWorkloadEndToEnd) {
  YahooConfig config;
  config.num_partitions = 4;
  config.num_events = 20000;
  config.num_campaigns = 10;
  config.ads_per_campaign = 5;
  config.event_time_span_seconds = 50;

  MessageBus bus;
  auto campaigns = GenerateYahooData(&bus, "events", config);
  ASSERT_TRUE(campaigns.ok()) << campaigns.status().ToString();
  auto source =
      std::make_shared<BusSource>(&bus, "events", YahooEventSchema());
  auto sink = std::make_shared<MemorySink>();

  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 4;
  opts.query_name = "yahoo";
  // Cap epochs so the run produces several epochs (a histogram needs more
  // than one observation to be interesting).
  opts.max_records_per_epoch = 5000;
  auto query = StreamingQuery::Start(YahooQuery(source, *campaigns), sink,
                                     opts)
                   .TakeValue();
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  ASSERT_GE(query->last_epoch(), 3);

  // (a) Prometheus text: per-operator row counters and the epoch-latency
  // histogram with sane quantile ordering.
  ASSERT_NE(query->metrics(), nullptr);
  std::string prom = query->metrics()->ToPrometheusText();
  EXPECT_NE(prom.find("sstreaming_operator_rows_out_total"),
            std::string::npos);
  EXPECT_NE(prom.find("sstreaming_operator_rows_in_total"),
            std::string::npos);
  EXPECT_NE(prom.find("op=\"Source[bus:events]\""), std::string::npos);
  EXPECT_NE(prom.find("# TYPE sstreaming_epoch_duration_nanos summary"),
            std::string::npos);
  EXPECT_NE(
      prom.find("sstreaming_source_rows_total{source=\"bus:events\"} 20000"),
      std::string::npos);
  LogHistogram* epoch_hist =
      query->metrics()->GetHistogram("sstreaming_epoch_duration_nanos");
  LogHistogram::Snapshot snap = epoch_hist->GetSnapshot();
  EXPECT_EQ(snap.count, query->last_epoch());
  EXPECT_GT(snap.p50, 0);
  EXPECT_LE(snap.p50, snap.p99);
  EXPECT_LE(snap.p99, snap.max);

  // (b) Trace spans cover >= 95% of each epoch's wall time.
  ASSERT_NE(query->tracer(), nullptr);
  auto spans = query->tracer()->Snapshot();
  ASSERT_FALSE(spans.empty());
  std::map<int64_t, int64_t> epoch_total;   // epoch span duration
  std::map<int64_t, int64_t> stage_total;   // sum of stage spans
  std::set<std::string> stage_names;
  for (const TraceSpan& span : spans) {
    if (span.cat == "epoch") epoch_total[span.epoch] += span.dur_nanos;
    if (span.cat == "stage") {
      stage_total[span.epoch] += span.dur_nanos;
      stage_names.insert(span.name);
    }
  }
  ASSERT_EQ(static_cast<int64_t>(epoch_total.size()), query->last_epoch());
  for (const auto& [epoch, total] : epoch_total) {
    ASSERT_GT(total, 0) << "epoch " << epoch;
    double coverage = static_cast<double>(stage_total[epoch]) /
                      static_cast<double>(total);
    EXPECT_GE(coverage, 0.95) << "epoch " << epoch;
  }
  // The commit-protocol stages are all present.
  EXPECT_TRUE(stage_names.count("plan"));
  EXPECT_TRUE(stage_names.count("execute"));
  EXPECT_TRUE(stage_names.count("checkpoint"));
  EXPECT_TRUE(stage_names.count("commit"));
  // Per-operator spans nest inside the epochs.
  bool has_operator_span = false;
  for (const TraceSpan& span : spans) {
    if (span.cat == "operator") has_operator_span = true;
  }
  EXPECT_TRUE(has_operator_span);

  // (c) Per-stage durations sum to the reported epoch duration, every epoch.
  ASSERT_FALSE(query->recent_progress().empty());
  for (const QueryProgress& p : query->recent_progress()) {
    EXPECT_EQ(p.duration_nanos, p.StageSumNanos()) << "epoch " << p.epoch;
    EXPECT_GT(p.duration_nanos, 0) << "epoch " << p.epoch;
  }
  // The capped epochs reported a backlog until the last one drained it.
  const QueryProgress& first = query->recent_progress().front();
  ASSERT_EQ(first.sources.size(), 1u);
  EXPECT_GT(first.sources[0].backlog_rows, 0);
  const QueryProgress& last = query->recent_progress().back();
  EXPECT_EQ(last.sources[0].backlog_rows, 0);

  // The trace exports as valid Chrome trace JSON.
  auto dir = MakeTempDir("obs_accept").TakeValue();
  ASSERT_TRUE(query->tracer()->WriteChromeTrace(dir + "/yahoo.json").ok());
  auto parsed = Json::Parse(ReadFile(dir + "/yahoo.json").TakeValue());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("traceEvents").array_items().size(), spans.size());
  RemoveDirRecursive(dir).ok();
}

TEST(ObservabilityOptionsTest, TracingCanBeDisabled) {
  auto stream = std::make_shared<MemoryStream>(
      "s", Schema::Make({{"v", TypeId::kInt64, false}}), 1);
  QueryOptions opts;
  opts.enable_tracing = false;
  auto query = StreamingQuery::Start(DataFrame::ReadStream(stream),
                                     std::make_shared<MemorySink>(), opts)
                   .TakeValue();
  EXPECT_EQ(query->tracer(), nullptr);
  ASSERT_TRUE(stream->AddData({{Value::Int64(1)}}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  EXPECT_NE(query->metrics(), nullptr);  // metrics stay on
  EXPECT_EQ(
      query->metrics()->GetCounter("sstreaming_epochs_total")->value(), 1);
}

TEST(ObservabilityOptionsTest, SharedRegistryAggregatesQueries) {
  auto registry = std::make_shared<MetricsRegistry>();
  auto stream = std::make_shared<MemoryStream>(
      "s", Schema::Make({{"v", TypeId::kInt64, false}}), 1);
  QueryOptions opts;
  opts.metrics = registry;
  auto q1 = StreamingQuery::Start(DataFrame::ReadStream(stream),
                                  std::make_shared<MemorySink>(), opts)
                .TakeValue();
  auto q2 = StreamingQuery::Start(DataFrame::ReadStream(stream),
                                  std::make_shared<MemorySink>(), opts)
                .TakeValue();
  ASSERT_TRUE(stream->AddData({{Value::Int64(1)}, {Value::Int64(2)}}).ok());
  ASSERT_TRUE(q1->ProcessAllAvailable().ok());
  ASSERT_TRUE(q2->ProcessAllAvailable().ok());
  EXPECT_EQ(q1->metrics().get(), registry.get());
  EXPECT_EQ(q2->metrics().get(), registry.get());
  // Both queries' epochs land in the one registry.
  EXPECT_EQ(registry->GetCounter("sstreaming_epochs_total")->value(), 2);
  EXPECT_EQ(registry->GetCounter("sstreaming_rows_read_total")->value(), 4);
}

}  // namespace
}  // namespace sstreaming

#include <gtest/gtest.h>

#include "analysis/analyzer.h"
#include "common/random.h"
#include "connectors/memory.h"
#include "incremental/incrementalizer.h"
#include "logical/dataframe.h"
#include "optimizer/optimizer.h"
#include "physical/operators.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false},
                       {"s", TypeId::kString, true},
                       {"v", TypeId::kFloat64, true}});
}

RecordBatchPtr RandomBatch(int64_t n, uint64_t seed) {
  Random rng(seed);
  ColumnPtr k = Column::Make(TypeId::kInt64);
  ColumnPtr s = Column::Make(TypeId::kString);
  ColumnPtr v = Column::Make(TypeId::kFloat64);
  for (int64_t i = 0; i < n; ++i) {
    k->AppendInt64(static_cast<int64_t>(rng.Uniform(50)));
    if (rng.OneIn(0.1)) {
      s->AppendNull();
    } else {
      // std::string("s") rather than "s": gcc 12's -Wrestrict false-fires
      // on operator+(const char*, string&&) under -O2 (PR 105329).
      s->AppendString(std::string("s") + std::to_string(rng.Uniform(10)));
    }
    if (rng.OneIn(0.1)) {
      v->AppendNull();
    } else {
      v->AppendFloat64(rng.NextDouble());
    }
  }
  return RecordBatch::Make(EventSchema(), {k, s, v});
}

TEST(GatherTest, PreservesRowsInOrder) {
  RecordBatchPtr batch = RandomBatch(100, 1);
  std::vector<int32_t> indices = {5, 0, 99, 50, 5};
  RecordBatchPtr out = batch->Gather(indices);
  ASSERT_EQ(out->num_rows(), 5);
  for (size_t i = 0; i < indices.size(); ++i) {
    EXPECT_EQ(CompareRows(out->RowAt(static_cast<int64_t>(i)),
                          batch->RowAt(indices[i])),
              0);
  }
}

TEST(GatherTest, EmptyIndices) {
  RecordBatchPtr batch = RandomBatch(10, 2);
  EXPECT_EQ(batch->Gather({})->num_rows(), 0);
}

TEST(ColumnCodecTest, EncodeValueToMatchesBoxedEncoding) {
  RecordBatchPtr batch = RandomBatch(200, 3);
  for (int c = 0; c < batch->num_columns(); ++c) {
    const Column& col = *batch->column(c);
    for (int64_t i = 0; i < col.size(); ++i) {
      std::string fast;
      col.EncodeValueTo(i, &fast);
      std::string boxed;
      col.ValueAt(i).EncodeTo(&boxed);
      ASSERT_EQ(fast, boxed) << "col " << c << " row " << i;
    }
  }
}

TEST(ColumnHashTest, HashIntoMatchesBoxedHash) {
  RecordBatchPtr batch = RandomBatch(200, 4);
  for (int c = 0; c < batch->num_columns(); ++c) {
    const Column& col = *batch->column(c);
    std::vector<uint64_t> hashes(static_cast<size_t>(col.size()),
                                 0x811C9DC5ULL);
    col.HashInto(&hashes);
    for (int64_t i = 0; i < col.size(); ++i) {
      EXPECT_EQ(hashes[static_cast<size_t>(i)],
                HashMix(0x811C9DC5ULL, col.ValueAt(i).Hash()));
    }
  }
}

class ShuffleTest : public ::testing::TestWithParam<int> {};

TEST_P(ShuffleTest, PartitionsAreConsistentAndComplete) {
  // Property: after shuffling by key, (a) no rows are lost or invented,
  // (b) equal keys land in the same partition (the contract stateful ops
  // rely on), for any partition count.
  const int out_parts = GetParam();
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 3);
  std::vector<Row> rows;
  Random rng(static_cast<uint64_t>(out_parts));
  for (int i = 0; i < 500; ++i) {
    rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                    Value::Str("x"), Value::Float64(1.0)});
  }
  ASSERT_TRUE(stream->AddData(rows).ok());

  auto analyzed =
      Analyzer::Analyze(DataFrame::ReadStream(stream).plan()).TakeValue();
  auto scan = Incrementalize(analyzed, out_parts).TakeValue();
  ExprPtr key = Col("k")->Resolve(*analyzed->schema()).TakeValue();
  auto shuffle = std::make_shared<ShuffleExec>(
      99, scan.root, std::vector<ExprPtr>{key}, out_parts);

  InlineScheduler scheduler;
  StateManager state("", 0, ShardedStateStore::Options());
  ExecContext ctx;
  ctx.epoch = 1;
  ctx.scheduler = &scheduler;
  ctx.state = &state;
  auto offsets = stream->LatestOffsets().TakeValue();
  ctx.offsets["s"] = {std::vector<int64_t>(offsets.size(), 0), offsets};

  auto out = shuffle->Execute(&ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), static_cast<size_t>(out_parts));
  int64_t total = 0;
  std::map<int64_t, int> key_to_partition;
  for (int p = 0; p < out_parts; ++p) {
    const RecordBatchPtr& batch = (*out)[static_cast<size_t>(p)];
    total += batch->num_rows();
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      int64_t k = batch->column(0)->Int64At(i);
      auto it = key_to_partition.find(k);
      if (it == key_to_partition.end()) {
        key_to_partition[k] = p;
      } else {
        EXPECT_EQ(it->second, p) << "key " << k << " split across partitions";
      }
    }
  }
  EXPECT_EQ(total, 500);
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, ShuffleTest,
                         ::testing::Values(1, 2, 3, 7, 16));

TEST(IncrementalizerTest, PureProjectionFusesIntoSource) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  DataFrame df = DataFrame::ReadStream(stream).SelectColumns({"k"});
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  auto plan = Incrementalize(analyzed, 2).TakeValue();
  // The projection disappears into the source read (§5.3).
  auto* source = dynamic_cast<SourceExec*>(plan.root.get());
  ASSERT_NE(source, nullptr) << plan.root->TreeString();
  EXPECT_TRUE(source->projected());
  EXPECT_EQ(plan.root->schema()->ToString(), "(k: int64?)");
}

TEST(IncrementalizerTest, OptimizerPrunesScanForAggregate) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  DataFrame df = DataFrame::ReadStream(stream)
                     .Where(Gt(Col("k"), Lit(0)))
                     .GroupBy({"k"})
                     .Count();
  PlanPtr optimized = Optimizer::Optimize(df.plan());
  auto analyzed = Analyzer::Analyze(optimized).TakeValue();
  auto plan = Incrementalize(analyzed, 2).TakeValue();
  // Walk to the leaf: it must be a projected source (only `k` read).
  const PhysOp* node = plan.root.get();
  while (!node->children().empty()) node = node->children()[0].get();
  const auto* source = dynamic_cast<const SourceExec*>(node);
  ASSERT_NE(source, nullptr);
  EXPECT_TRUE(source->projected()) << plan.root->TreeString();
}

TEST(IncrementalizerTest, OperatorIdsAreDeterministic) {
  // Recovery correctness depends on stable operator ids across restarts.
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  auto analyzed = Analyzer::Analyze(df.plan()).TakeValue();
  auto plan1 = Incrementalize(analyzed, 2).TakeValue();
  auto plan2 = Incrementalize(analyzed, 2).TakeValue();
  EXPECT_EQ(plan1.root->op_id(), plan2.root->op_id());
  EXPECT_EQ(plan1.root->TreeString(), plan2.root->TreeString());
  EXPECT_TRUE(plan1.has_stateful);
  EXPECT_EQ(plan1.num_key_columns, 1);
}

TEST(PhysOpTest, SortAndLimitOverPartitions) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 3);
  std::vector<Row> rows;
  for (int i = 0; i < 20; ++i) {
    rows.push_back({Value::Int64(20 - i), Value::Str("x"),
                    Value::Float64(static_cast<double>(i))});
  }
  ASSERT_TRUE(stream->AddData(rows).ok());
  auto analyzed =
      Analyzer::Analyze(DataFrame::ReadStream(stream).plan()).TakeValue();
  auto scan = Incrementalize(analyzed, 3).TakeValue();
  ExprPtr key = Col("k")->Resolve(*analyzed->schema()).TakeValue();
  auto sort = std::make_shared<SortExec>(
      90, scan.root, std::vector<SortExec::Key>{{key, true}});
  auto limit = std::make_shared<LimitExec>(91, PhysOpPtr(sort), 5);

  InlineScheduler scheduler;
  StateManager state("", 0, ShardedStateStore::Options());
  ExecContext ctx;
  ctx.epoch = 1;
  ctx.scheduler = &scheduler;
  ctx.state = &state;
  auto offsets = stream->LatestOffsets().TakeValue();
  ctx.offsets["s"] = {std::vector<int64_t>(offsets.size(), 0), offsets};
  auto out = limit->Execute(&ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  ASSERT_EQ((*out)[0]->num_rows(), 5);
  for (int64_t i = 0; i < 5; ++i) {
    EXPECT_EQ((*out)[0]->column(0)->Int64At(i), i + 1);
  }
}

}  // namespace
}  // namespace sstreaming

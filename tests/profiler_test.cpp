// Sampling-profiler certification: attribution words must reach the sampler
// through the RAII scopes, `QueryOptions::profile_hz` must arm for exactly
// the query's lifetime, and arming/disarming/collecting must be safe against
// concurrent HTTP scrapes of /profile. Runs in the thread-sanitizer leg of
// the verify recipe (ctest -L tsan-stress) like tsan_stress_test.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "connectors/memory.h"
#include "exec/query_manager.h"
#include "exec/streaming_query.h"
#include "obs/http_server.h"
#include "runtime/scheduler.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t time_sec) {
  return {Value::Str(country), Value::Timestamp(time_sec * kSec)};
}

/// Busy-spins for `millis` of wall clock so the sampler has something to
/// catch (sleeping threads publish a word but never advance it to "busy"
/// work — the sampler counts them too, which is what we want here).
void SpinFor(int64_t millis) {
  int64_t t0 = MonotonicNanos();
  volatile uint64_t sum = 0;
  while (MonotonicNanos() - t0 < millis * 1000000) sum = sum + 1;
}

TEST(ProfilerTest, InternIsIdempotent) {
  Profiler& prof = Profiler::Instance();
  uint32_t a = prof.Intern("profiler-test-label-a");
  EXPECT_NE(a, 0u);
  EXPECT_EQ(a, prof.Intern("profiler-test-label-a"));
  EXPECT_NE(a, prof.Intern("profiler-test-label-b"));
}

// Samples taken while nested scopes are engaged carry the full
// (query, stage, op, op_id) attribution into the snapshot and both export
// formats.
TEST(ProfilerTest, ScopesAttributeSamplesToQueryStageOp) {
  Profiler& prof = Profiler::Instance();
  prof.Reset();
  uint32_t query = prof.Intern("attr-query");
  uint32_t stage = prof.Intern("attr-stage");
  uint32_t op = prof.Intern("attr-scan");
  prof.Arm(500);
  {
    ProfileQueryScope query_scope(query);
    ProfileStageScope stage_scope(stage);
    ProfileOpScope op_scope(op, 7);
    SpinFor(300);
  }
  prof.Disarm();
  EXPECT_FALSE(Profiler::active());

  ProfileSnapshot snap = prof.Snapshot();
  EXPECT_GT(snap.ticks, 0);
  bool found = false;
  for (const ProfileEntry& e : snap.entries) {
    if (e.query == "attr-query" && e.stage == "attr-stage" &&
        e.op == "attr-scan" && e.op_id == 7) {
      found = true;
      EXPECT_GT(e.samples, 0);
      EXPECT_GT(e.self_nanos, 0);
    }
  }
  ASSERT_TRUE(found) << snap.Collapsed();
  EXPECT_NE(snap.Collapsed().find("attr-query;attr-stage;attr-scan"),
            std::string::npos);
  Json json = snap.ToJson();
  EXPECT_GT(json.Get("entries").array_items().size(), 0u);
  EXPECT_GT(json.Get("totalSamples").int_value(), 0);
}

// Collect() returns only the samples of its own window (a before/after
// delta), stamped with the window's wall-clock span.
TEST(ProfilerTest, CollectReturnsWindowDelta) {
  Profiler& prof = Profiler::Instance();
  prof.Reset();
  std::atomic<bool> stop{false};
  std::thread worker([&stop] {
    // Re-engage per iteration: scopes are no-ops while disarmed, so the
    // worker picks up attribution as soon as Collect arms the profiler.
    while (!stop.load()) {
      ProfileQueryScope scope(Profiler::Instance().Intern("collect-query"));
      SpinFor(5);
    }
  });
  ProfileSnapshot snap = prof.Collect(300, 200);
  stop.store(true);
  worker.join();

  EXPECT_FALSE(Profiler::active());
  EXPECT_DOUBLE_EQ(snap.hz, 200);
  EXPECT_GE(snap.duration_nanos, 300 * 1000000);
  bool found = false;
  for (const ProfileEntry& e : snap.entries) {
    if (e.query == "collect-query") found = true;
  }
  EXPECT_TRUE(found) << snap.Collapsed();
}

// QueryOptions::profile_hz arms the profiler for exactly the query's
// lifetime, and epoch work lands in the profile under the query's name.
TEST(ProfilerTest, ProfileHzArmsForQueryLifetime) {
  Profiler& prof = Profiler::Instance();
  prof.Reset();
  ASSERT_FALSE(Profiler::active());

  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.query_name = "profiled";
  opts.profile_hz = 500;
  auto query = StreamingQuery::Start(
      DataFrame::ReadStream(stream).GroupBy({"country"}).Count(), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(Profiler::active());

  // Epochs are short relative to the sampling period, so drive epochs until
  // one is caught (bounded; lands within a few iterations in practice).
  bool found = false;
  for (int i = 0; i < 400 && !found; ++i) {
    std::vector<Row> rows;
    for (int j = 0; j < 5000; ++j) {
      rows.push_back(Click(j % 2 == 0 ? "ca" : "ny", i));
    }
    ASSERT_TRUE(stream->AddData(std::move(rows)).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    for (const ProfileEntry& e : prof.Snapshot().entries) {
      if (e.query == "profiled") found = true;
    }
  }
  EXPECT_TRUE(found) << prof.Snapshot().Collapsed();

  (*query)->Stop();
  EXPECT_FALSE(Profiler::active());
}

// The race surface under TSan: a background query armed via profile_hz,
// HTTP scrapers collecting /profile windows, a thread churning Arm/Disarm,
// and a direct Collect — all concurrent with the epoch loop publishing
// attribution words.
TEST(ProfilerTest, ConcurrentArmDisarmCollectAndScrape) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  PoolScheduler pool(4);

  QueryManager manager;
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.scheduler = &pool;
  opts.trigger = Trigger::ProcessingTime(1000);  // 1ms
  opts.profile_hz = 200;
  DataFrame df =
      DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  ASSERT_TRUE(manager.StartQuery("prof-stress", df, sink, opts).ok());
  ASSERT_TRUE(manager.ServeHttp(0).ok());
  int port = manager.http_port();
  ASSERT_GT(port, 0);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&] {
      while (!done.load()) {
        auto resp = HttpGet(port, "/profile?seconds=1&hz=200", 30000);
        if (!resp.ok() || resp->status != 200) {
          failures.fetch_add(1);
          continue;
        }
        auto body = Json::Parse(resp->body);
        if (!body.ok() || !body->Get("hz").is_number()) failures.fetch_add(1);
      }
    });
  }
  scrapers.emplace_back([&] {
    while (!done.load()) {
      auto resp = HttpGet(port, "/metrics", 30000);
      if (!resp.ok() || resp->status != 200) failures.fetch_add(1);
    }
  });
  std::thread churn([&] {
    for (int i = 0; i < 30; ++i) {
      Profiler::Instance().Arm(150);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      Profiler::Instance().Disarm();
    }
  });

  static const char* kCountries[] = {"ca", "ny", "de", "fr", "jp", "br"};
  for (int i = 0; i < 40; ++i) {
    std::vector<Row> rows;
    for (int j = 0; j < 6; ++j) rows.push_back(Click(kCountries[j], i));
    ASSERT_TRUE(stream->AddData(rows).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ProfileSnapshot direct = Profiler::Instance().Collect(100, 250);
  EXPECT_GE(direct.duration_nanos, 100 * 1000000);

  done.store(true);
  churn.join();
  for (std::thread& t : scrapers) t.join();
  EXPECT_EQ(failures.load(), 0);

  manager.StopAll();
  manager.StopHttp();
  // Every armer (query, scrapes, churn, direct collect) released its hold.
  EXPECT_FALSE(Profiler::active());
}

}  // namespace
}  // namespace sstreaming

#include "common/thread_pool.h"

#include <atomic>

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, SingleThreadPoolPreservesCompletion) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 50; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
}

}  // namespace
}  // namespace sstreaming

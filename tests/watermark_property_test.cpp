// Property tests for event-time semantics (paper §4.3.1): watermark
// monotonicity, bounded-lateness completeness ("all events that arrived
// within at most T seconds of being produced will still be processed"),
// and deterministic late-data drops for closed windows.

#include <gtest/gtest.h>

#include "common/random.h"
#include "connectors/memory.h"
#include "exec/batch_executor.h"
#include "exec/streaming_query.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Ev(const char* k, int64_t sec) {
  return {Value::Str(k), Value::Timestamp(sec * kSec)};
}

DataFrame WindowedCount(const std::shared_ptr<MemoryStream>& stream,
                        int64_t delay_sec) {
  return DataFrame::ReadStream(stream)
      .WithWatermark("time", delay_sec * kSec)
      .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                NamedExpr{Col("k"), "k"}})
      .Count();
}

TEST(WatermarkPropertyTest, WatermarkIsMonotonic) {
  Random rng(99);
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query =
      StreamingQuery::Start(WindowedCount(stream, 5), sink, opts)
          .TakeValue();
  int64_t last_watermark = INT64_MIN;
  for (int step = 0; step < 40; ++step) {
    // Event times wander, sometimes backwards (out-of-order input).
    int64_t t = static_cast<int64_t>(rng.Uniform(30)) + step;
    ASSERT_TRUE(stream->AddData({Ev("k", t)}).ok());
    ASSERT_TRUE(query->ProcessAllAvailable().ok());
    EXPECT_GE(query->watermark_micros(), last_watermark)
        << "watermark must never regress";
    last_watermark = query->watermark_micros();
  }
}

class BoundedLatenessTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundedLatenessTest, WithinDelayDataIsNeverDropped) {
  // Generate events whose disorder is strictly smaller than the watermark
  // delay; whatever the trigger interleaving, the update-mode result must
  // equal the batch result over all data (nothing dropped as late).
  Random rng(static_cast<uint64_t>(GetParam()));
  constexpr int64_t kDelaySec = 20;
  constexpr int64_t kMaxDisorderSec = 15;  // < delay
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 3);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 3;
  auto query =
      StreamingQuery::Start(WindowedCount(stream, kDelaySec), sink, opts)
          .TakeValue();

  std::vector<Row> all;
  const char* keys[] = {"a", "b", "c"};
  for (int step = 0; step < 60; ++step) {
    int64_t base = step * 2;  // advancing "production time"
    int64_t jitter = static_cast<int64_t>(rng.Uniform(kMaxDisorderSec));
    Row row = Ev(keys[rng.Uniform(3)], std::max<int64_t>(0, base - jitter));
    all.push_back(row);
    ASSERT_TRUE(stream->AddData({row}).ok());
    if (rng.OneIn(0.4)) {
      ASSERT_TRUE(query->ProcessAllAvailable().ok());
    }
  }
  ASSERT_TRUE(query->ProcessAllAvailable().ok());

  DataFrame batch = DataFrame::FromRows(EventSchema(), all)
                        .TakeValue()
                        .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec),
                                     "w"),
                                  NamedExpr{Col("k"), "k"}})
                        .Count();
  auto expected = RunBatchSorted(batch).TakeValue();
  // The streaming result may have evicted closed windows from STATE, but
  // every (window, key) group must have been emitted with its final count:
  // compare against the union of everything the sink ever saw (update mode
  // upserts by key, so the last value per key is the final one).
  auto got = sink->SortedSnapshot();
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(CompareRows(got[i], expected[i]), 0)
        << "got " << RowToString(got[i]) << " want "
        << RowToString(expected[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedLatenessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(WatermarkPropertyTest, TooLateDataIsDroppedDeterministically) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(WindowedCount(stream, 5), sink, opts)
                   .TakeValue();
  // Window [0,10) gets one event; then time jumps far ahead.
  ASSERT_TRUE(stream->AddData({Ev("a", 3)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 100)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  EXPECT_EQ(query->watermark_micros(), 95 * kSec);
  // An event for the closed [0,10) window must be ignored...
  ASSERT_TRUE(stream->AddData({Ev("a", 4), Ev("a", 101)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  // window [0,10): count stays 1; window [100,110): count 2.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Timestamp(0));
  EXPECT_EQ(rows[0][3], Value::Int64(1)) << "late event must not reopen";
  EXPECT_EQ(rows[1][3], Value::Int64(2));
}

TEST(WatermarkPropertyTest, StateIsEvictedForClosedWindows) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(WindowedCount(stream, 2), sink, opts)
                   .TakeValue();
  for (int64_t t = 0; t < 100; t += 10) {
    ASSERT_TRUE(stream->AddData({Ev("a", t), Ev("b", t)}).ok());
    ASSERT_TRUE(query->ProcessAllAvailable().ok());
  }
  // Only the windows at/above the watermark remain in state; without
  // eviction this would be 10 windows x 2 keys = 20 entries.
  const auto& progress = query->recent_progress().back();
  EXPECT_LE(progress.state_entries, 6)
      << "closed windows must be evicted (paper §4.3.1: watermarks let the "
         "system forget state for old windows)";
}

TEST(WatermarkPropertyTest, MultipleWatermarkedSourcesUseMinSafeBound) {
  // Two sources with different delays both feed the watermark; the engine
  // must only advance to a point safe for both (we take max over observed
  // (event_time - delay), which is exactly that).
  auto s1 = std::make_shared<MemoryStream>("s1", EventSchema(), 1);
  auto s2 = std::make_shared<MemoryStream>("s2", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(s1)
                     .WithWatermark("time", 10 * kSec)
                     .Join(DataFrame::ReadStream(s2)
                               .WithWatermark("time", 30 * kSec),
                           {"k"});
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  auto query = StreamingQuery::Start(df, sink, opts).TakeValue();
  ASSERT_TRUE(s1->AddData({Ev("x", 100)}).ok());
  ASSERT_TRUE(s2->AddData({Ev("x", 100)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  // Observed: 100-10=90 from s1 and 100-30=70 from s2 -> min policy: 70.
  EXPECT_EQ(query->watermark_micros(), 70 * kSec);
}

}  // namespace
}  // namespace sstreaming

#include "common/status.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad column");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::AnalysisError("x").IsAnalysisError());
  EXPECT_TRUE(Status::UnsupportedOperation("x").IsUnsupportedOperation());
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, TakeValueMovesOut) {
  Result<std::string> r = std::string("hello");
  std::string s = r.TakeValue();
  EXPECT_EQ(s, "hello");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return 2 * x;
}

Status UseMacros(int x, int* out) {
  SS_RETURN_IF_ERROR(FailIfNegative(x));
  SS_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  *out = doubled;
  return Status::OK();
}

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(3, &out).ok());
  EXPECT_EQ(out, 6);
  EXPECT_TRUE(UseMacros(-1, &out).IsInvalidArgument());
  EXPECT_TRUE(UseMacros(0, &out).IsInvalidArgument());
}

}  // namespace
}  // namespace sstreaming

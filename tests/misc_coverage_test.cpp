// Edge-case coverage across modules: GroupState semantics, stream-static
// right-outer joins, JSON fuzz round-trips, codec edge values, and engine
// option validation.

#include <gtest/gtest.h>

#include "common/random.h"
#include "connectors/file_connectors.h"
#include "connectors/memory.h"
#include "storage/fs.h"
#include "exec/batch_executor.h"
#include "exec/streaming_query.h"
#include "logical/plan.h"

namespace sstreaming {
namespace {

TEST(GroupStateTest, LifecycleAndTimeouts) {
  GroupState absent(std::nullopt, /*watermark=*/100, /*now=*/1000,
                    /*timed_out=*/false);
  EXPECT_FALSE(absent.exists());
  EXPECT_FALSE(absent.HasTimedOut());
  EXPECT_EQ(absent.watermark_micros(), 100);
  EXPECT_EQ(absent.processing_time_micros(), 1000);

  absent.update({Value::Int64(5)});
  EXPECT_TRUE(absent.exists());
  EXPECT_TRUE(absent.updated());
  EXPECT_EQ(absent.get()[0], Value::Int64(5));

  absent.SetTimeoutDuration(500);
  EXPECT_EQ(absent.timeout_at_micros(), 1500);  // now + duration
  absent.SetTimeoutTimestamp(4242);
  EXPECT_EQ(absent.timeout_at_micros(), 4242);

  absent.remove();
  EXPECT_FALSE(absent.exists());
  EXPECT_TRUE(absent.removed());
  EXPECT_EQ(absent.timeout_at_micros(), INT64_MAX) << "remove clears timeout";

  GroupState timed_out(Row{Value::Int64(1)}, INT64_MIN, 0, true);
  EXPECT_TRUE(timed_out.HasTimedOut());
  EXPECT_TRUE(timed_out.exists());
}

TEST(JoinTest, StaticLeftStreamRightOuter) {
  // RIGHT OUTER with the static side on the left preserves the stream.
  auto schema = Schema::Make({{"k", TypeId::kInt64, false},
                              {"v", TypeId::kString, false}});
  auto stream = std::make_shared<MemoryStream>("s", schema, 2);
  DataFrame static_df =
      DataFrame::FromRows(Schema::Make({{"k", TypeId::kInt64, false},
                                        {"tag", TypeId::kString, false}}),
                          {{Value::Int64(1), Value::Str("one")}})
          .TakeValue();
  DataFrame df = static_df.Join(DataFrame::ReadStream(stream), {"k"},
                                JoinType::kRightOuter);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream
                  ->AddData({{Value::Int64(1), Value::Str("a")},
                             {Value::Int64(2), Value::Str("b")}})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  // Output: (k, tag, v) — the duplicate right key column is dropped, but
  // USING-key coalescing keeps the key for unmatched stream rows.
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(1));
  EXPECT_EQ(rows[0][1], Value::Str("one"));
  EXPECT_EQ(rows[0][2], Value::Str("a"));
  EXPECT_EQ(rows[1][0], Value::Int64(2)) << "coalesced USING key";
  EXPECT_TRUE(rows[1][1].is_null()) << "unmatched stream row preserved";
}

TEST(JoinTest, MultiColumnJoinKeys) {
  auto left = DataFrame::FromRows(
                  Schema::Make({{"a", TypeId::kInt64, false},
                                {"b", TypeId::kString, false},
                                {"x", TypeId::kInt64, false}}),
                  {{Value::Int64(1), Value::Str("p"), Value::Int64(10)},
                   {Value::Int64(1), Value::Str("q"), Value::Int64(20)}})
                  .TakeValue();
  auto right = DataFrame::FromRows(
                   Schema::Make({{"a", TypeId::kInt64, false},
                                 {"b", TypeId::kString, false},
                                 {"y", TypeId::kInt64, false}}),
                   {{Value::Int64(1), Value::Str("q"), Value::Int64(99)}})
                   .TakeValue();
  auto rows = RunBatchSorted(left.Join(right, {"a", "b"}));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][1], Value::Str("q"));
  EXPECT_EQ((*rows)[0][3], Value::Int64(99));
}

TEST(ValueCodecTest, ExtremeValuesRoundTrip) {
  std::vector<Value> values = {
      Value::Int64(INT64_MAX), Value::Int64(INT64_MIN),
      Value::Float64(-0.0),    Value::Float64(1e308),
      Value::Float64(-1e-308), Value::Timestamp(INT64_MAX),
      Value::Str(std::string(1000, '\xff')), Value::Str(std::string("\0x", 2)),
  };
  std::string buf;
  for (const Value& v : values) v.EncodeTo(&buf);
  size_t pos = 0;
  for (const Value& expected : values) {
    auto got = Value::DecodeFrom(buf, &pos);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->type(), expected.type());
    if (expected.type() == TypeId::kString) {
      EXPECT_EQ(got->string_value(), expected.string_value());
    } else {
      EXPECT_EQ(*got, expected);
    }
  }
}

TEST(JsonFuzzTest, RandomDocumentsRoundTrip) {
  Random rng(2024);
  std::function<Json(int)> gen = [&](int depth) -> Json {
    if (depth <= 0 || rng.OneIn(0.4)) {
      switch (rng.Uniform(5)) {
        case 0:
          return Json::Null();
        case 1:
          return Json::Bool(rng.OneIn(0.5));
        case 2:
          return Json::Int(static_cast<int64_t>(rng.Next()));
        case 3:
          return Json::Double(rng.NextDouble() * 1e6 - 5e5);
        default: {
          std::string s;
          for (int i = 0; i < static_cast<int>(rng.Uniform(12)); ++i) {
            s.push_back(static_cast<char>(32 + rng.Uniform(95)));
          }
          if (rng.OneIn(0.2)) s += "\"\\\n\t";
          return Json::Str(s);
        }
      }
    }
    if (rng.OneIn(0.5)) {
      Json arr = Json::Array();
      for (int i = 0; i < static_cast<int>(rng.Uniform(5)); ++i) {
        arr.Append(gen(depth - 1));
      }
      return arr;
    }
    Json obj = Json::Object();
    for (int i = 0; i < static_cast<int>(rng.Uniform(5)); ++i) {
      // std::string("k") rather than "k": gcc 12's -Wrestrict false-fires
      // on operator+(const char*, string&&) under -O2 (PR 105329).
      obj.Set(std::string("k") + std::to_string(i), gen(depth - 1));
    }
    return obj;
  };
  for (int i = 0; i < 200; ++i) {
    Json doc = gen(4);
    auto parsed = Json::Parse(doc.Dump());
    ASSERT_TRUE(parsed.ok()) << doc.Dump();
    EXPECT_TRUE(*parsed == doc) << doc.Dump();
    auto pretty = Json::Parse(doc.DumpPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_TRUE(*pretty == doc);
  }
}

TEST(EngineValidationTest, SinkModeSupportChecked) {
  // File sinks cannot update in place; Start must reject, not fail later.
  auto schema = Schema::Make({{"k", TypeId::kString, false}});
  auto stream = std::make_shared<MemoryStream>("s", schema, 1);
  auto dir = MakeTempDir("misc_sink_check").TakeValue();
  auto file_sink = std::make_shared<JsonFileSink>(dir);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(df, file_sink, opts);
  ASSERT_FALSE(query.ok());
  EXPECT_TRUE(query.status().IsInvalidArgument());
  RemoveDirRecursive(dir).ok();
}

TEST(EngineValidationTest, BatchDataFrameRejectedByStreamingStart) {
  auto df = DataFrame::FromRows(
                Schema::Make({{"k", TypeId::kInt64, false}}),
                {{Value::Int64(1)}})
                .TakeValue();
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  EXPECT_FALSE(StreamingQuery::Start(df, sink, opts).ok());
}

TEST(EngineValidationTest, GlobalAggregationStreams) {
  // Aggregation with no keys over a stream (complete mode).
  auto schema = Schema::Make({{"v", TypeId::kInt64, false}});
  auto stream = std::make_shared<MemoryStream>("s", schema, 2);
  DataFrame df = DataFrame::ReadStream(stream)
                     .GroupBy(std::vector<NamedExpr>{})
                     .Agg({SumOf(Col("v"), "total"), CountAll("n")});
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kComplete;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({{Value::Int64(3)}, {Value::Int64(4)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({{Value::Int64(5)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->Snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(12));
  EXPECT_EQ(rows[0][1], Value::Int64(3));
}

TEST(EngineValidationTest, EmptyEpochsDoNotEmitSpuriousRows) {
  auto schema = Schema::Make({{"k", TypeId::kString, false}});
  auto stream = std::make_shared<MemoryStream>("s", schema, 2);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(df, sink, opts).TakeValue();
  ASSERT_TRUE(stream->AddData({{Value::Str("a")}}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  int64_t commits = sink->num_committed_epochs();
  // No new data: no epoch, no sink commit.
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->num_committed_epochs(), commits);
}

}  // namespace
}  // namespace sstreaming

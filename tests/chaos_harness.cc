#include "chaos_harness.h"

#include <algorithm>
#include <filesystem>

#include "common/random.h"
#include "obs/query_history.h"
#include "state/sharded_state_store.h"
#include "storage/fs.h"
#include "wal/write_ahead_log.h"

namespace sstreaming {

namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ChaosSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

/// The whole workload, generated up front so every run (golden or faulted,
/// however many crashes) feeds byte-identical rounds.
std::vector<std::vector<Row>> GenerateRounds(const ChaosHarness::Options& o) {
  static const char* kCountries[] = {"ca", "ny", "tx", "uk"};
  Random rng(o.seed);
  std::vector<std::vector<Row>> rounds(static_cast<size_t>(o.rounds));
  for (int r = 0; r < o.rounds; ++r) {
    for (int i = 0; i < o.rows_per_round; ++i) {
      // Event times advance ~6s per round with ±8s jitter: windows keep
      // opening and closing as the watermark moves, so state both grows
      // and drains over the run.
      int64_t sec = r * 6 + static_cast<int64_t>(rng.Uniform(8));
      rounds[static_cast<size_t>(r)].push_back(
          {Value::Str(kCountries[rng.Uniform(4)]),
           Value::Int64(static_cast<int64_t>(rng.Uniform(100))),
           Value::Timestamp(sec * kSec)});
    }
  }
  return rounds;
}

DataFrame ChaosQuery(const std::shared_ptr<MemoryStream>& stream) {
  return DataFrame::ReadStream(stream)
      .WithWatermark("time", 5 * kSec)
      .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                NamedExpr{Col("country"), "country"}})
      .Count();
}

SchemaPtr ChaosRightSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"rlatency", TypeId::kInt64, false},
                       {"rtime", TypeId::kTimestamp, false}});
}

/// Stream-stream inner join on country; both sides watermarked so join state
/// drains as event time advances. Keys recur across rounds, so stored side
/// state regularly *grows* without its older rows changing — the condition
/// for the shard Append fast path (and its failpoint) to run.
DataFrame ChaosJoinQuery(const std::shared_ptr<MemoryStream>& left,
                         const std::shared_ptr<MemoryStream>& right) {
  return DataFrame::ReadStream(left)
      .WithWatermark("time", 5 * kSec)
      .Join(DataFrame::ReadStream(right).WithWatermark("rtime", 5 * kSec),
            {"country"});
}

/// After a drained run the durable artifacts must agree: every planned
/// epoch committed, the WAL tail matches the engine's last epoch, and each
/// state-store partition restores to the expected checkpointed version.
Status CheckDurableAgreement(const std::string& checkpoint_dir,
                             int64_t last_epoch,
                             int state_checkpoint_interval) {
  SS_ASSIGN_OR_RETURN(WriteAheadLog wal,
                      WriteAheadLog::Open(checkpoint_dir + "/wal"));
  SS_ASSIGN_OR_RETURN(std::optional<int64_t> planned,
                      wal.LatestPlannedEpoch());
  SS_ASSIGN_OR_RETURN(std::optional<int64_t> committed,
                      wal.LatestCommittedEpoch());
  if (planned.value_or(0) != last_epoch ||
      committed.value_or(0) != last_epoch) {
    return Status::Internal(
        "WAL disagrees with engine: planned=" +
        std::to_string(planned.value_or(0)) +
        " committed=" + std::to_string(committed.value_or(0)) +
        " last_epoch=" + std::to_string(last_epoch));
  }
  SS_ASSIGN_OR_RETURN(std::vector<int64_t> epochs, wal.ListPlannedEpochs());
  int64_t expect = 1;
  for (int64_t e : epochs) {
    if (e != expect++) {
      return Status::Internal("lost epoch: plan log skips to " +
                              std::to_string(e));
    }
    if (!wal.IsCommitted(e)) {
      return Status::Internal("epoch " + std::to_string(e) +
                              " planned but never committed");
    }
  }
  // Stateful stages checkpoint on multiples of the interval; every shard of
  // every partition store must restore exactly that version. Checking each
  // shard independently (not just the store's min) pins down which shard a
  // partial checkpoint corrupted.
  const int64_t interval = std::max(1, state_checkpoint_interval);
  const int64_t expected_version = (last_epoch / interval) * interval;
  std::string state_root = checkpoint_dir + "/state";
  if (FileExists(state_root)) {
    std::error_code ec;
    for (const auto& op_entry :
         std::filesystem::directory_iterator(state_root, ec)) {
      if (!op_entry.is_directory()) continue;
      for (const auto& part_entry :
           std::filesystem::directory_iterator(op_entry.path(), ec)) {
        if (!part_entry.is_directory()) continue;
        // Adopt whatever shard count is on disk: this is a forensic reopen,
        // not a restart, so the SS3004 mismatch gate must not apply.
        ShardedStateStore::Options reopen;
        reopen.allow_shard_count_mismatch = true;
        SS_ASSIGN_OR_RETURN(std::unique_ptr<ShardedStateStore> store,
                            ShardedStateStore::Open(
                                part_entry.path().string(), last_epoch,
                                reopen));
        for (int s = 0; s < store->num_shards(); ++s) {
          int64_t v = store->shard(s)->restored_version();
          if (v != expected_version) {
            return Status::Internal(
                "state store " + part_entry.path().string() + " shard " +
                std::to_string(s) + " restored v" + std::to_string(v) +
                ", expected v" + std::to_string(expected_version));
          }
        }
      }
    }
  }
  return Status::OK();
}

/// History is telemetry, but it must be *readable* telemetry after any
/// number of crashes: ReadAll must parse the entire log (torn tails are
/// repaired on reopen; interior corruption is a bug), every event must name
/// this query, each crash-restart must land a fresh "started" line, and the
/// progress lines must reach the engine's final epoch.
Status CheckHistoryIntegrity(const std::string& checkpoint_dir,
                             int64_t last_epoch) {
  SS_ASSIGN_OR_RETURN(std::vector<Json> events,
                      QueryHistoryLog::ReadAll(checkpoint_dir));
  int64_t starts = 0;
  int64_t max_epoch = 0;
  for (const Json& event : events) {
    if (event.Get("query").string_value() != "chaos") {
      return Status::Internal("history event for wrong query: " +
                              event.Dump());
    }
    const std::string& kind = event.Get("event").string_value();
    if (kind == "started") {
      ++starts;
    } else if (kind == "progress") {
      max_epoch = std::max(
          max_epoch, event.Get("progress").Get("epoch").int_value());
    }
  }
  // At least the last successful incarnation logged its start. (No exact
  // count: a crash injected before the started line — e.g. inside
  // WriteAheadLog::Open — legitimately leaves no trace of that attempt.)
  if (starts < 1) {
    return Status::Internal("history has no started event");
  }
  if (max_epoch != last_epoch) {
    return Status::Internal("history progress stops at epoch " +
                            std::to_string(max_epoch) + ", engine reached " +
                            std::to_string(last_epoch));
  }
  return Status::OK();
}

}  // namespace

Status VerifyingSink::CommitEpoch(int64_t epoch, OutputMode mode,
                                  int num_key_columns,
                                  const std::vector<RecordBatchPtr>& batches) {
  std::vector<Row> rows;
  for (const auto& b : batches) {
    auto brows = b->ToRows();
    rows.insert(rows.end(), brows.begin(), brows.end());
  }
  std::sort(rows.begin(), rows.end(), RowLess());
  // Forward first: the inner sink carries the sink.commit.* failpoints, and
  // a delivery that failed there must not be recorded as seen.
  SS_RETURN_IF_ERROR(inner_.CommitEpoch(epoch, mode, num_key_columns,
                                        batches));
  std::lock_guard<std::mutex> lock(mu_);
  ++commit_calls_;
  auto it = epoch_rows_.find(epoch);
  if (it == epoch_rows_.end()) {
    epoch_rows_.emplace(epoch, std::move(rows));
  } else if (it->second != rows) {
    mismatched_epochs_.push_back(epoch);
  }
  return Status::OK();
}

ChaosHarness::RunResult ChaosHarness::RunWithFault(
    const std::string& failpoint, int hit) {
  FailpointSpec spec;
  spec.hit = hit;
  spec.action = failpoint == "fs.write.torn" ? FailpointSpec::Action::kTorn
                                             : FailpointSpec::Action::kError;
  return Run(failpoint, spec);
}

ChaosHarness::RunResult ChaosHarness::Run(const std::string& failpoint,
                                          FailpointSpec spec) {
  RunResult result;
  auto dir = MakeTempDir("sstreaming_chaos");
  if (!dir.ok()) {
    result.status = dir.status();
    return result;
  }
  result.checkpoint_dir = *dir;

  const bool join = options_.workload == Workload::kJoin;
  auto stream = std::make_shared<MemoryStream>("clicks", ChaosSchema(),
                                               options_.num_partitions);
  std::shared_ptr<MemoryStream> right_stream;
  auto sink = std::make_shared<VerifyingSink>();
  DataFrame df = ChaosQuery(stream);
  if (join) {
    right_stream = std::make_shared<MemoryStream>(
        "views", ChaosRightSchema(), options_.num_partitions);
    df = ChaosJoinQuery(stream, right_stream);
  }
  QueryOptions opts;
  // Stream-stream join output is append-only; the aggregation workload
  // upserts per-window counts.
  opts.mode = join ? OutputMode::kAppend : OutputMode::kUpdate;
  opts.num_partitions = options_.num_partitions;
  opts.checkpoint_dir = result.checkpoint_dir;
  opts.state_checkpoint_interval = options_.state_checkpoint_interval;
  opts.num_state_shards = options_.num_state_shards;
  opts.enable_tracing = false;
  opts.query_name = "chaos";

  Failpoints& fps = Failpoints::Instance();
  fps.DisarmAll();
  if (!failpoint.empty()) {
    result.status = fps.Arm(failpoint, spec);
    if (!result.status.ok()) return result;
  }

  std::unique_ptr<StreamingQuery> query;
  // Starts (recovering) if needed and drains available input, treating
  // every injected failure — wherever it strikes, including inside
  // recovery itself — as a crash: drop the query object, start over from
  // the checkpoint.
  auto pump = [&]() -> Status {
    while (true) {
      if (query == nullptr) {
        auto q = StreamingQuery::Start(df, sink, opts);
        if (!q.ok()) {
          if (!Failpoints::IsInjected(q.status())) return q.status();
          if (++result.crashes > options_.max_crashes) {
            return Status::Internal("crash loop during recovery: " +
                                    q.status().ToString());
          }
          continue;
        }
        query = std::move(*q);
      }
      Status st = query->ProcessAllAvailable();
      if (st.ok()) return Status::OK();
      query.reset();  // simulated process death
      if (!Failpoints::IsInjected(st)) return st;
      if (++result.crashes > options_.max_crashes) {
        return Status::Internal("crash loop: " + st.ToString());
      }
    }
  };

  auto rounds = GenerateRounds(options_);
  // The join workload feeds a second deterministic stream (different seed,
  // same cadence) so both sides grow and match across epochs.
  std::vector<std::vector<Row>> right_rounds;
  if (join) {
    Options right_options = options_;
    right_options.seed = options_.seed + 1;
    right_rounds = GenerateRounds(right_options);
  }
  for (int r = 0; r < options_.rounds; ++r) {
    result.status = stream->AddData(rounds[static_cast<size_t>(r)]);
    if (!result.status.ok()) break;
    if (join) {
      result.status =
          right_stream->AddData(right_rounds[static_cast<size_t>(r)]);
      if (!result.status.ok()) break;
    }
    result.status = pump();
    if (!result.status.ok()) break;
    if (r + 1 == options_.planned_restart_after_round) {
      query.reset();  // clean stop; next pump exercises the recovery path
    }
  }
  if (result.status.ok()) result.status = pump();
  if (query != nullptr) result.last_epoch = query->last_epoch();
  query.reset();
  if (!failpoint.empty()) result.triggers = fps.triggers(failpoint);
  fps.DisarmAll();

  result.final_rows = sink->SortedSnapshot();
  result.epochs = sink->epoch_rows();
  result.mismatched_epochs = sink->mismatched_epochs();
  if (result.status.ok()) {
    result.status = CheckDurableAgreement(result.checkpoint_dir,
                                          result.last_epoch,
                                          options_.state_checkpoint_interval);
  }
  if (result.status.ok()) {
    result.status = CheckHistoryIntegrity(result.checkpoint_dir,
                                          result.last_epoch);
  }
  RemoveDirRecursive(result.checkpoint_dir).ok();
  return result;
}

Status ChaosHarness::CheckInvariants(const RunResult& golden,
                                     const RunResult& chaos) {
  SS_RETURN_IF_ERROR(chaos.status);
  if (!chaos.mismatched_epochs.empty()) {
    return Status::Internal(
        "replayed epoch delivered different rows (first: epoch " +
        std::to_string(chaos.mismatched_epochs.front()) + ")");
  }
  if (chaos.last_epoch != golden.last_epoch) {
    return Status::Internal("epoch count diverged: " +
                            std::to_string(chaos.last_epoch) + " vs golden " +
                            std::to_string(golden.last_epoch));
  }
  // Every delivered epoch matches the fault-free run's same epoch, and the
  // epoch sets are equal — so at any crash point the committed output was a
  // prefix of the golden sequence, with no duplicates and nothing lost.
  // On divergence, name the first epoch and row that differ (not just a
  // boolean) so a failed sweep scenario points at the broken epoch.
  if (chaos.epochs != golden.epochs) {
    for (const auto& [epoch, golden_rows] : golden.epochs) {
      auto it = chaos.epochs.find(epoch);
      if (it == chaos.epochs.end()) {
        return Status::Internal("epoch " + std::to_string(epoch) +
                                " delivered in the fault-free run is missing "
                                "from the chaos run");
      }
      const std::vector<Row>& chaos_rows = it->second;
      if (chaos_rows == golden_rows) continue;
      size_t n = std::min(chaos_rows.size(), golden_rows.size());
      for (size_t i = 0; i < n; ++i) {
        if (chaos_rows[i] != golden_rows[i]) {
          return Status::Internal(
              "epoch " + std::to_string(epoch) + " diverged at sorted row " +
              std::to_string(i) + ": chaos=" + RowToString(chaos_rows[i]) +
              " golden=" + RowToString(golden_rows[i]));
        }
      }
      return Status::Internal(
          "epoch " + std::to_string(epoch) + " diverged: chaos delivered " +
          std::to_string(chaos_rows.size()) + " rows, golden " +
          std::to_string(golden_rows.size()) + " (first differ at row " +
          std::to_string(n) + ")");
    }
    for (const auto& [epoch, rows] : chaos.epochs) {
      (void)rows;
      if (!golden.epochs.count(epoch)) {
        return Status::Internal("chaos run delivered epoch " +
                                std::to_string(epoch) +
                                " that the fault-free run never produced");
      }
    }
    return Status::Internal("per-epoch output diverged from fault-free run");
  }
  if (chaos.final_rows != golden.final_rows) {
    size_t n = std::min(chaos.final_rows.size(), golden.final_rows.size());
    for (size_t i = 0; i < n; ++i) {
      if (chaos.final_rows[i] != golden.final_rows[i]) {
        return Status::Internal(
            "final table diverged at sorted row " + std::to_string(i) +
            ": chaos=" + RowToString(chaos.final_rows[i]) +
            " golden=" + RowToString(golden.final_rows[i]));
      }
    }
    return Status::Internal(
        "final table diverged: chaos has " +
        std::to_string(chaos.final_rows.size()) + " rows, golden " +
        std::to_string(golden.final_rows.size()));
  }
  return Status::OK();
}

std::vector<std::string> ChaosHarness::RegisteredFailpoints() {
  return Failpoints::Instance().RegisteredNames();
}

}  // namespace sstreaming

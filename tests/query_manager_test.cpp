#include "exec/query_manager.h"

#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false}});
}

Row Ev(const char* k, int64_t v) { return {Value::Str(k), Value::Int64(v)}; }

TEST(QueryManagerTest, MultipleQueriesOverOneSource) {
  // The §8.1 platform shape: several queries fed by the same stream.
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 2);
  auto etl_sink = std::make_shared<MemorySink>();
  auto alert_sink = std::make_shared<MemorySink>();

  QueryManager manager;
  QueryOptions etl_opts;
  etl_opts.mode = OutputMode::kAppend;
  ASSERT_TRUE(manager
                  .StartQuerySynchronous(
                      "etl", DataFrame::ReadStream(stream), etl_sink,
                      etl_opts)
                  .ok());
  QueryOptions alert_opts;
  alert_opts.mode = OutputMode::kUpdate;
  ASSERT_TRUE(manager
                  .StartQuerySynchronous(
                      "alerts",
                      DataFrame::ReadStream(stream)
                          .GroupBy({"k"})
                          .Agg({SumOf(Col("v"), "total")})
                          .Where(Gt(Col("total"), Lit(10))),
                      alert_sink, alert_opts)
                  .ok());

  auto names = manager.ActiveQueryNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alerts");
  EXPECT_EQ(names[1], "etl");

  ASSERT_TRUE(stream->AddData({Ev("a", 7), Ev("a", 8), Ev("b", 1)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());

  EXPECT_EQ(etl_sink->Snapshot().size(), 3u);
  auto alerts = alert_sink->SortedSnapshot();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0][0], Value::Str("a"));
  EXPECT_EQ(alerts[0][1], Value::Int64(15));
  EXPECT_TRUE(manager.AnyError().ok());
}

TEST(QueryManagerTest, DuplicateNamesRejected) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  QueryManager manager;
  QueryOptions opts;
  auto sink = std::make_shared<MemorySink>();
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         sink, opts)
                  .ok());
  Status s = manager.StartQuerySynchronous(
      "q", DataFrame::ReadStream(stream), sink, opts);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(QueryManagerTest, StopQueryUnregisters) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  QueryManager manager;
  QueryOptions opts;
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(),
                                         opts)
                  .ok());
  ASSERT_TRUE(manager.StopQuery("q").ok());
  EXPECT_TRUE(manager.ActiveQueryNames().empty());
  EXPECT_TRUE(manager.StopQuery("q").IsNotFound());
  EXPECT_EQ(manager.Get("q"), nullptr);
  // The name is reusable after stopping.
  EXPECT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(),
                                         opts)
                  .ok());
}

TEST(QueryManagerTest, LatestProgressAggregates) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  QueryManager manager;
  QueryOptions opts;
  ASSERT_TRUE(manager
                  .StartQuerySynchronous("q", DataFrame::ReadStream(stream),
                                         std::make_shared<MemorySink>(),
                                         opts)
                  .ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 1)}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  auto progress = manager.LatestProgress();
  ASSERT_EQ(progress.size(), 1u);
  EXPECT_EQ(progress["q"].rows_read, 1);
}

TEST(QueryManagerTest, BackgroundQueriesProcessData) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryManager manager;
  QueryOptions opts;
  opts.trigger = Trigger::ProcessingTime(1000);  // 1ms
  ASSERT_TRUE(manager
                  .StartQuery("bg", DataFrame::ReadStream(stream), sink,
                              opts)
                  .ok());
  ASSERT_TRUE(stream->AddData({Ev("a", 1), Ev("b", 2)}).ok());
  for (int i = 0; i < 500 && sink->Snapshot().size() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(sink->Snapshot().size(), 2u);
  ASSERT_TRUE(manager.StopQuery("bg").ok());
}

TEST(MetricsEventLogTest, AppendsJsonLines) {
  auto dir = MakeTempDir("metrics_test").TakeValue();
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  auto query =
      StreamingQuery::Start(DataFrame::ReadStream(stream), sink, opts)
          .TakeValue();
  MetricsEventLog log(dir + "/metrics.jsonl");

  ASSERT_TRUE(stream->AddData({Ev("a", 1)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  ASSERT_TRUE(log.Report("q1", *query).ok());
  ASSERT_TRUE(stream->AddData({Ev("b", 2), Ev("c", 3)}).ok());
  ASSERT_TRUE(query->ProcessAllAvailable().ok());
  ASSERT_TRUE(log.Report("q1", *query).ok());
  // Re-reporting without new epochs adds nothing.
  ASSERT_TRUE(log.Report("q1", *query).ok());

  auto events = log.ReadAll();
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_EQ((*events)[0].Get("query").string_value(), "q1");
  EXPECT_EQ((*events)[0].Get("epoch").int_value(), 1);
  EXPECT_EQ((*events)[0].Get("rowsRead").int_value(), 1);
  EXPECT_EQ((*events)[1].Get("epoch").int_value(), 2);
  EXPECT_EQ((*events)[1].Get("rowsRead").int_value(), 2);
  RemoveDirRecursive(dir).ok();
}

}  // namespace
}  // namespace sstreaming

#include "types/record_batch.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"id", TypeId::kInt64, false},
                       {"name", TypeId::kString, true},
                       {"score", TypeId::kFloat64, true}});
}

RecordBatchPtr TestBatch() {
  auto r = RecordBatch::FromRows(
      TestSchema(),
      {{Value::Int64(1), Value::Str("a"), Value::Float64(1.0)},
       {Value::Int64(2), Value::Null(), Value::Float64(2.0)},
       {Value::Int64(3), Value::Str("c"), Value::Null()}});
  return r.TakeValue();
}

TEST(RecordBatchTest, FromRowsAndRowAt) {
  RecordBatchPtr b = TestBatch();
  EXPECT_EQ(b->num_rows(), 3);
  EXPECT_EQ(b->num_columns(), 3);
  Row r1 = b->RowAt(1);
  EXPECT_EQ(r1[0], Value::Int64(2));
  EXPECT_TRUE(r1[1].is_null());
}

TEST(RecordBatchTest, FromRowsRejectsBadArity) {
  auto r = RecordBatch::FromRows(TestSchema(), {{Value::Int64(1)}});
  EXPECT_FALSE(r.ok());
}

TEST(RecordBatchTest, FromRowsRejectsBadType) {
  auto r = RecordBatch::FromRows(
      TestSchema(), {{Value::Str("oops"), Value::Str("a"), Value::Null()}});
  EXPECT_FALSE(r.ok());
}

TEST(RecordBatchTest, EmptyBatch) {
  RecordBatchPtr b = RecordBatch::Empty(TestSchema());
  EXPECT_EQ(b->num_rows(), 0);
  EXPECT_EQ(b->num_columns(), 3);
}

TEST(RecordBatchTest, FilterKeepsMaskedRows) {
  RecordBatchPtr b = TestBatch();
  RecordBatchPtr f = b->Filter({1, 0, 1});
  EXPECT_EQ(f->num_rows(), 2);
  EXPECT_EQ(f->RowAt(0)[0], Value::Int64(1));
  EXPECT_EQ(f->RowAt(1)[0], Value::Int64(3));
  EXPECT_TRUE(f->RowAt(1)[2].is_null());
}

TEST(RecordBatchTest, SelectColumnsReordersSchema) {
  RecordBatchPtr b = TestBatch();
  RecordBatchPtr p = b->SelectColumns({2, 0});
  EXPECT_EQ(p->schema()->field(0).name, "score");
  EXPECT_EQ(p->schema()->field(1).name, "id");
  EXPECT_EQ(p->RowAt(0)[1], Value::Int64(1));
}

TEST(RecordBatchTest, Slice) {
  RecordBatchPtr b = TestBatch();
  RecordBatchPtr s = b->Slice(1, 2);
  EXPECT_EQ(s->num_rows(), 2);
  EXPECT_EQ(s->RowAt(0)[0], Value::Int64(2));
}

TEST(RecordBatchTest, ConcatMergesBatches) {
  RecordBatchPtr b = TestBatch();
  RecordBatchPtr merged = RecordBatch::Concat(TestSchema(), {b, b});
  EXPECT_EQ(merged->num_rows(), 6);
  EXPECT_EQ(merged->RowAt(3)[0], Value::Int64(1));
}

TEST(RecordBatchTest, ConcatEmptyInput) {
  RecordBatchPtr merged = RecordBatch::Concat(TestSchema(), {});
  EXPECT_EQ(merged->num_rows(), 0);
}

TEST(RecordBatchTest, ToRowsRoundTrip) {
  RecordBatchPtr b = TestBatch();
  auto rows = b->ToRows();
  auto rebuilt = RecordBatch::FromRows(TestSchema(), rows);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->num_rows(), b->num_rows());
  for (int64_t i = 0; i < b->num_rows(); ++i) {
    EXPECT_EQ(CompareRows((*rebuilt)->RowAt(i), b->RowAt(i)), 0);
  }
}

}  // namespace
}  // namespace sstreaming

#include "sql/parser.h"

#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "exec/batch_executor.h"
#include "exec/streaming_query.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SqlContext MakeContext() {
  SqlContext ctx;
  auto sales = DataFrame::FromRows(
                   Schema::Make({{"region", TypeId::kString, false},
                                 {"amount", TypeId::kInt64, false},
                                 {"ts", TypeId::kTimestamp, false}}),
                   {{Value::Str("na"), Value::Int64(10), Value::Timestamp(1)},
                    {Value::Str("na"), Value::Int64(20), Value::Timestamp(2)},
                    {Value::Str("eu"), Value::Int64(5), Value::Timestamp(3)},
                    {Value::Str("eu"), Value::Int64(7), Value::Timestamp(4)},
                    {Value::Str("ap"), Value::Int64(100),
                     Value::Timestamp(5)}})
                   .TakeValue();
  ctx.RegisterTable("sales", sales);
  auto regions =
      DataFrame::FromRows(Schema::Make({{"region", TypeId::kString, false},
                                        {"name", TypeId::kString, false}}),
                          {{Value::Str("na"), Value::Str("North America")},
                           {Value::Str("eu"), Value::Str("Europe")}})
          .TakeValue();
  ctx.RegisterTable("regions", regions);
  return ctx;
}

std::vector<Row> RunSql(const SqlContext& ctx, const std::string& sql) {
  auto df = ctx.Sql(sql);
  EXPECT_TRUE(df.ok()) << sql << " -> " << df.status().ToString();
  if (!df.ok()) return {};
  auto rows = RunBatchSorted(*df);
  EXPECT_TRUE(rows.ok()) << sql << " -> " << rows.status().ToString();
  return rows.ok() ? *rows : std::vector<Row>{};
}

TEST(SqlTest, SelectStar) {
  auto ctx = MakeContext();
  EXPECT_EQ(RunSql(ctx, "SELECT * FROM sales").size(), 5u);
}

TEST(SqlTest, WhereAndProjection) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx, "SELECT amount * 2 AS double_amount FROM sales "
                       "WHERE region = 'na'");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(20));
  EXPECT_EQ(rows[1][0], Value::Int64(40));
}

TEST(SqlTest, OperatorsAndPrecedence) {
  auto ctx = MakeContext();
  // 2 + 3 * 4 = 14 (not 20); AND binds tighter than OR.
  auto rows = RunSql(ctx, "SELECT amount FROM sales WHERE amount = 2 + 3 * 4 "
                       "OR region = 'ap' AND amount >= 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(100));
}

TEST(SqlTest, GroupByAggregates) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx,
                  "SELECT region, COUNT(*) AS n, SUM(amount) AS total, "
                  "AVG(amount) AS mean FROM sales GROUP BY region");
  ASSERT_EQ(rows.size(), 3u);
  // sorted: ap, eu, na
  EXPECT_EQ(rows[0][0], Value::Str("ap"));
  EXPECT_EQ(rows[0][1], Value::Int64(1));
  EXPECT_EQ(rows[1][2], Value::Int64(12));          // eu total
  EXPECT_DOUBLE_EQ(rows[2][3].float64_value(), 15);  // na mean
}

TEST(SqlTest, GlobalAggregate) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx, "SELECT MIN(amount) AS lo, MAX(amount) AS hi "
                       "FROM sales");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Int64(5));
  EXPECT_EQ(rows[0][1], Value::Int64(100));
}

TEST(SqlTest, JoinUsing) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx, "SELECT name, amount FROM sales "
                       "JOIN regions USING (region) WHERE amount > 6");
  ASSERT_EQ(rows.size(), 3u);  // na 10, na 20, eu 7
}

TEST(SqlTest, LeftJoinOn) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx, "SELECT region, name FROM sales "
                       "LEFT JOIN regions ON region = region");
  ASSERT_EQ(rows.size(), 5u);
  // 'ap' has no region entry -> NULL name.
  EXPECT_EQ(rows[0][0], Value::Str("ap"));
  EXPECT_TRUE(rows[0][1].is_null());
}

TEST(SqlTest, HavingOrderLimit) {
  auto ctx = MakeContext();
  auto df = ctx.Sql(
      "SELECT region, SUM(amount) AS total FROM sales GROUP BY region "
      "HAVING total < 100 ORDER BY total DESC LIMIT 1");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  auto rows = RunBatch(*df);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Str("na"));
  EXPECT_EQ((*rows)[0][1], Value::Int64(30));
}

TEST(SqlTest, Distinct) {
  auto ctx = MakeContext();
  EXPECT_EQ(RunSql(ctx, "SELECT DISTINCT region FROM sales").size(), 3u);
}

TEST(SqlTest, CastAndIsNull) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx, "SELECT CAST(amount AS STRING) AS s FROM sales "
                       "WHERE region IS NOT NULL AND amount = 100");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Str("100"));
}

TEST(SqlTest, ParseIntervals) {
  EXPECT_EQ(*ParseIntervalMicros("10 seconds"), 10 * kSec);
  EXPECT_EQ(*ParseIntervalMicros("5 minutes"), 300 * kSec);
  EXPECT_EQ(*ParseIntervalMicros("1 hour"), 3600 * kSec);
  EXPECT_EQ(*ParseIntervalMicros("250 ms"), 250000);
  EXPECT_FALSE(ParseIntervalMicros("ten seconds").ok());
  EXPECT_FALSE(ParseIntervalMicros("5 parsecs").ok());
}

TEST(SqlTest, SyntaxErrorsAreReported) {
  auto ctx = MakeContext();
  EXPECT_FALSE(ctx.Sql("SELEC * FROM sales").ok());
  EXPECT_FALSE(ctx.Sql("SELECT FROM sales").ok());
  EXPECT_FALSE(ctx.Sql("SELECT * FROM nope").ok());
  EXPECT_FALSE(ctx.Sql("SELECT * FROM sales WHERE").ok());
  EXPECT_FALSE(ctx.Sql("SELECT * FROM sales LIMIT x").ok());
  EXPECT_FALSE(ctx.Sql("SELECT * FROM sales trailing garbage").ok());
  // Analysis errors surface at analysis, not parse.
  auto df = ctx.Sql("SELECT missing_col FROM sales");
  ASSERT_TRUE(df.ok());
  EXPECT_FALSE(RunBatch(*df).ok());
}

TEST(SqlTest, NonAggregateSelectItemMustBeGrouped) {
  auto ctx = MakeContext();
  EXPECT_FALSE(
      ctx.Sql("SELECT ts, COUNT(*) FROM sales GROUP BY region").ok());
}

// --- The paper's headline: the SAME SQL text runs as batch or streaming ---

TEST(SqlTest, StreamingSqlWindowedQuery) {
  auto schema = Schema::Make({{"campaign", TypeId::kString, false},
                              {"event_time", TypeId::kTimestamp, false}});
  auto stream = std::make_shared<MemoryStream>("clicks", schema, 2);
  SqlContext ctx;
  ctx.RegisterTable("clicks", DataFrame::ReadStream(stream));

  auto df = ctx.Sql(
      "SELECT window(event_time, '10 seconds') AS w, campaign, "
      "COUNT(*) AS clicks FROM clicks GROUP BY "
      "window(event_time, '10 seconds'), campaign");
  ASSERT_TRUE(df.ok()) << df.status().ToString();
  EXPECT_TRUE(df->IsStreaming());

  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  auto query = StreamingQuery::Start(*df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream
                  ->AddData({{Value::Str("c1"), Value::Timestamp(1 * kSec)},
                             {Value::Str("c1"), Value::Timestamp(2 * kSec)},
                             {Value::Str("c2"), Value::Timestamp(15 * kSec)}})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  // (w_start, w_end, campaign, clicks)
  EXPECT_EQ(rows[0][0], Value::Timestamp(0));
  EXPECT_EQ(rows[0][2], Value::Str("c1"));
  EXPECT_EQ(rows[0][3], Value::Int64(2));
  EXPECT_EQ(rows[1][0], Value::Timestamp(10 * kSec));
  EXPECT_EQ(rows[1][3], Value::Int64(1));
}

TEST(SqlTest, SameSqlBatchAndStreaming) {
  auto schema = Schema::Make({{"k", TypeId::kString, false},
                              {"v", TypeId::kInt64, false}});
  std::vector<Row> data = {{Value::Str("a"), Value::Int64(1)},
                           {Value::Str("b"), Value::Int64(2)},
                           {Value::Str("a"), Value::Int64(3)}};
  const std::string sql =
      "SELECT k, SUM(v) AS total FROM t GROUP BY k";

  SqlContext batch_ctx;
  batch_ctx.RegisterTable("t",
                          DataFrame::FromRows(schema, data).TakeValue());
  auto batch_rows = RunBatchSorted(*batch_ctx.Sql(sql));
  ASSERT_TRUE(batch_rows.ok());

  auto stream = std::make_shared<MemoryStream>("t", schema, 2);
  SqlContext stream_ctx;
  stream_ctx.RegisterTable("t", DataFrame::ReadStream(stream));
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(*stream_ctx.Sql(sql), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData(data).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  auto stream_rows = sink->SortedSnapshot();
  ASSERT_EQ(stream_rows.size(), batch_rows->size());
  for (size_t i = 0; i < stream_rows.size(); ++i) {
    EXPECT_EQ(CompareRows(stream_rows[i], (*batch_rows)[i]), 0);
  }
}

TEST(SqlTest, CaseInsensitiveKeywordsAndTables) {
  auto ctx = MakeContext();
  auto rows = RunSql(ctx, "select region, count(*) as n from SALES "
                       "group by region");
  EXPECT_EQ(rows.size(), 3u);
}

TEST(SqlTest, ExplainAnalyzeStreamingQuery) {
  auto schema = Schema::Make({{"campaign", TypeId::kString, false},
                              {"event_time", TypeId::kTimestamp, false}});
  auto stream = std::make_shared<MemoryStream>("clicks", schema, 2);
  SqlContext ctx;
  ctx.RegisterTable("clicks", DataFrame::ReadStream(stream));
  ASSERT_TRUE(stream
                  ->AddData({{Value::Str("c1"), Value::Timestamp(1 * kSec)},
                             {Value::Str("c2"), Value::Timestamp(2 * kSec)}})
                  .ok());
  auto text = ctx.ExplainAnalyzeSql(
      "SELECT campaign, COUNT(*) AS clicks FROM clicks GROUP BY campaign",
      OutputMode::kUpdate);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  // The profile ran a real epoch: actuals, not estimates.
  EXPECT_NE(text->find("EXPLAIN ANALYZE"), std::string::npos) << *text;
  EXPECT_NE(text->find("epochs=1"), std::string::npos) << *text;
  EXPECT_NE(text->find("rows_in=2"), std::string::npos) << *text;
  // And it was side-effect free for the stream: the data is still there
  // for a real query to consume (MemoryStream reads do not retire offsets).
  EXPECT_NE(text->find("state_rows="), std::string::npos)
      << "the aggregate holds state: " << *text;
}

TEST(SqlTest, ExplainAnalyzeBatchFallsBackToExplain) {
  auto ctx = MakeContext();
  auto text = ctx.ExplainAnalyzeSql(
      "SELECT region, COUNT(*) AS n FROM sales GROUP BY region",
      OutputMode::kAppend);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("batch plan; no epochs to profile"),
            std::string::npos)
      << *text;
}

}  // namespace
}  // namespace sstreaming

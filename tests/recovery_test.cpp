#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t latency, int64_t time_sec) {
  return {Value::Str(country), Value::Int64(latency),
          Value::Timestamp(time_sec * kSec)};
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_recovery_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  QueryOptions Durable(OutputMode mode) {
    QueryOptions opts;
    opts.mode = mode;
    opts.num_partitions = 2;
    opts.checkpoint_dir = dir_;
    return opts;
  }

  std::string dir_;
};

TEST_F(RecoveryTest, RestartResumesFromCommittedOffsets) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ca", 1, 2)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    // Query object destroyed = clean shutdown.
  }
  // New data arrives while "down".
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 3), Click("ny", 1, 3)}).ok());
  {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], Value::Int64(3)) << "ca count must include state "
                                              "recovered from the store";
    EXPECT_EQ(rows[1][1], Value::Int64(1));
    EXPECT_GE((*query)->last_epoch(), 2);
  }
}

TEST_F(RecoveryTest, UncommittedEpochIsReplayedIdempotently) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok());
    ASSERT_TRUE(stream->AddData({Click("ca", 1, 1)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  }
  // Simulate a crash after planning but before commit: hand-write a plan
  // for epoch 2 with no commit record (exactly what a mid-epoch crash
  // leaves behind, §6.1 step 3).
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 2), Click("ny", 1, 2)}).ok());
  {
    auto wal = WriteAheadLog::Open(dir_ + "/wal").TakeValue();
    EpochPlan plan;
    plan.epoch = 2;
    plan.sources.push_back(SourceOffsets{"clicks", {1}, {3}});
    ASSERT_TRUE(wal.WritePlan(plan).ok());
    // no WriteCommit: crashed
  }
  {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    // Recovery must have replayed epoch 2 and committed it.
    EXPECT_EQ((*query)->last_epoch(), 2);
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][1], Value::Int64(2));  // ca
    EXPECT_EQ(rows[1][1], Value::Int64(1));  // ny
    // And the WAL shows the commit.
    auto wal = WriteAheadLog::Open(dir_ + "/wal").TakeValue();
    EXPECT_TRUE(wal.IsCommitted(2));
  }
}

TEST_F(RecoveryTest, CrashLoopDoesNotDoubleCount) {
  // Replaying the same uncommitted epoch repeatedly (crash loop) must be
  // idempotent end to end.
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1)}).ok());
  {
    auto wal = WriteAheadLog::Open(dir_ + "/wal").TakeValue();
    EpochPlan plan;
    plan.epoch = 1;
    plan.sources.push_back(SourceOffsets{"clicks", {0}, {1}});
    ASSERT_TRUE(wal.WritePlan(plan).ok());
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], Value::Int64(1)) << "attempt " << attempt;
  }
}

TEST_F(RecoveryTest, CodeUpdateAcrossRestart) {
  // Paper §7.1: a UDF crashes an epoch; the operator updates the UDF and
  // restarts; processing resumes from where it left off with the new code.
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  auto make_df = [&](bool fixed) {
    ScalarFn fn = [fixed](const std::vector<Value>& args) -> Result<Value> {
      if (!fixed && args[0] == Value::Str("poison")) {
        return Status::InvalidArgument("UDF bug");
      }
      if (args[0] == Value::Str("poison")) return Value::Str("recovered");
      return args[0];
    };
    return DataFrame::ReadStream(stream).Select(
        {As(Udf("parse", fn, TypeId::kString, {Col("country")}), "c")});
  };
  {
    auto query = StreamingQuery::Start(make_df(false), sink,
                                       Durable(OutputMode::kAppend));
    ASSERT_TRUE(query.ok());
    ASSERT_TRUE(stream->AddData({Click("ok", 1, 1)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    ASSERT_TRUE(stream->AddData({Click("poison", 1, 2)}).ok());
    EXPECT_FALSE((*query)->ProcessAllAvailable().ok());  // epoch fails
  }
  {
    // Restart with the fixed UDF; the failed epoch replays with new code.
    auto query = StreamingQuery::Start(make_df(true), sink,
                                       Durable(OutputMode::kAppend));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], Value::Str("ok"));
    EXPECT_EQ(rows[1][0], Value::Str("recovered"));
  }
}

TEST_F(RecoveryTest, ManualRollbackRecomputes) {
  // Paper §7.2: roll the application back to an epoch and recompute.
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  auto sink1 = std::make_shared<MemorySink>();
  {
    auto query =
        StreamingQuery::Start(df, sink1, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok());
    for (int e = 0; e < 3; ++e) {
      ASSERT_TRUE(stream->AddData({Click("ca", 1, e)}).ok());
      ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    }
    EXPECT_EQ((*query)->last_epoch(), 3);
  }
  ASSERT_TRUE(StreamingQuery::Rollback(dir_, 1).ok());
  auto sink2 = std::make_shared<MemorySink>();
  {
    auto query =
        StreamingQuery::Start(df, sink2, Durable(OutputMode::kUpdate));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    // Epochs 2.. were recomputed (source still has the data: replayable).
    auto rows = sink2->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], Value::Int64(3));
  }
}

TEST_F(RecoveryTest, RunOnceTriggerProcessesAndStops) {
  // Paper §7.3: "run-once" trigger — one epoch of work per invocation with
  // full transactionality, the discontinuous-processing pattern.
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  QueryOptions opts = Durable(OutputMode::kUpdate);
  opts.trigger = Trigger::Once();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1)}).ok());
  {
    auto query = StreamingQuery::Start(df, sink, opts);
    ASSERT_TRUE(query.ok());
    auto ran = (*query)->ProcessOneTrigger();
    ASSERT_TRUE(ran.ok());
    EXPECT_TRUE(*ran);
  }
  // Hours later, another "job run" picks up exactly the new data.
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 2), Click("ca", 1, 3)}).ok());
  {
    auto query = StreamingQuery::Start(df, sink, opts);
    ASSERT_TRUE(query.ok());
    auto ran = (*query)->ProcessOneTrigger();
    ASSERT_TRUE(ran.ok());
    EXPECT_TRUE(*ran);
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][1], Value::Int64(3));
  }
}

TEST_F(RecoveryTest, WatermarkSurvivesRestart) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(stream)
          .WithWatermark("time", 5 * kSec)
          .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "window")})
          .Count();
  {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kAppend));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE(stream->AddData({Click("ca", 1, 2), Click("ca", 1, 16)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    EXPECT_EQ((*query)->watermark_micros(), 11 * kSec);
  }
  {
    auto query =
        StreamingQuery::Start(df, sink, Durable(OutputMode::kAppend));
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    // After restart the watermark is not lost: new data triggers the closed
    // window's emission based on the recovered watermark.
    ASSERT_TRUE(stream->AddData({Click("ca", 1, 17)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0][0], Value::Timestamp(0));
    EXPECT_EQ(rows[0][2], Value::Int64(1));
  }
}

TEST_F(RecoveryTest, AdaptiveBatchingCatchesUpInOneEpoch) {
  // Paper §7.3: after downtime the engine executes one large catch-up epoch
  // by default; with a per-epoch cap it needs many epochs.
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  std::vector<Row> backlog;
  for (int i = 0; i < 100; ++i) backlog.push_back(Click("ca", 1, i));
  ASSERT_TRUE(stream->AddData(backlog).ok());

  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  {
    auto sink = std::make_shared<MemorySink>();
    QueryOptions opts;  // ephemeral, adaptive (unlimited epoch size)
    opts.mode = OutputMode::kUpdate;
    auto query = StreamingQuery::Start(df, sink, opts);
    ASSERT_TRUE(query.ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    EXPECT_EQ((*query)->last_epoch(), 1) << "adaptive batching: one epoch";
    EXPECT_EQ(sink->SortedSnapshot()[0][1], Value::Int64(100));
  }
  {
    auto sink = std::make_shared<MemorySink>();
    QueryOptions opts;
    opts.mode = OutputMode::kUpdate;
    opts.max_records_per_epoch = 10;
    auto query = StreamingQuery::Start(df, sink, opts);
    ASSERT_TRUE(query.ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    EXPECT_EQ((*query)->last_epoch(), 10) << "capped: many epochs";
    EXPECT_EQ(sink->SortedSnapshot()[0][1], Value::Int64(100));
  }
}

}  // namespace
}  // namespace sstreaming

#include "obs/doctor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "obs/http_server.h"
#include "obs/query_history.h"
#include "runtime/scheduler.h"
#include "state/sharded_state_store.h"
#include "storage/fs.h"
#include "testing/failpoints.h"
#include "types/row.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

std::string TempDir() {
  auto dir = MakeTempDir("sstreaming_doctor");
  EXPECT_TRUE(dir.ok()) << dir.status().ToString();
  return *dir;
}

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const std::string& country, int64_t time_sec) {
  return {Value::Str(country), Value::Timestamp(time_sec * kSec)};
}

DataFrame CountByCountry(const std::shared_ptr<MemoryStream>& stream) {
  return DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
}

/// The diagnosis the HTTP endpoint computes: the query's live progress
/// window plus its configuration.
DoctorReport OnlineDiagnosis(const StreamingQuery& query,
                             const std::string& name) {
  DoctorInput input;
  input.query_name = name;
  input.window = query.GetProgressSnapshot();
  input.scheduler_parallelism = query.scheduler_parallelism();
  input.num_state_shards = query.num_state_shards();
  return Diagnose(input);
}

/// After the query stopped, the offline path (`ssctl doctor`) must reach the
/// same top verdict from the durable history alone, and the termination-time
/// "doctor" event the engine appended must agree.
void ExpectOfflineParity(const std::string& dir, const std::string& verdict) {
  auto offline = DiagnoseHistory(dir);
  ASSERT_TRUE(offline.ok()) << offline.status().ToString();
  EXPECT_EQ(offline->top_verdict(), verdict) << offline->Render();
  auto events = QueryHistoryLog::ReadAll(dir);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  bool saw_doctor = false;
  for (const Json& event : *events) {
    if (event.Get("event").string_value() != "doctor") continue;
    saw_doctor = true;
    EXPECT_EQ(event.Get("report").Get("topVerdict").string_value(), verdict);
  }
  EXPECT_TRUE(saw_doctor) << "no doctor event in the durable history";
}

// --- injected-bottleneck scenarios: each makes one rule the true story ----

// A slow sink (delay failpoint inside Sink::CommitEpoch) dominates epoch
// time, so the doctor must call the query sink-bound — online, over HTTP,
// and offline from the history after termination.
TEST(DoctorTest, SlowSinkYieldsSinkBound) {
  std::string dir = TempDir();
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir;
  opts.query_name = "sinkbound";

  FailpointSpec spec;
  spec.action = FailpointSpec::Action::kDelay;
  spec.delay_micros = 20000;
  spec.sticky = true;
  ASSERT_TRUE(
      Failpoints::Instance().Arm("sink.commit.before_apply", spec).ok());

  auto query = StreamingQuery::Start(CountByCountry(stream), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(stream->AddData({Click("ca", i), Click("ny", i)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  }
  Failpoints::Instance().DisarmAll();

  DoctorReport report = OnlineDiagnosis(**query, "sinkbound");
  ASSERT_EQ(report.top_verdict(), "sink-bound") << report.Render();
  const DoctorFinding& top = report.findings.front();
  EXPECT_GT(top.score, 0.35) << report.Render();
  EXPECT_FALSE(top.summary.empty());
  EXPECT_FALSE(top.suggestion.empty());
  EXPECT_GT(top.evidence.Get("fraction").double_value(), 0.35);

  // The HTTP route serves the same diagnosis, and unknown queries 404.
  ObservabilityServer server;
  server.MountQuery("sinkbound", query->get());
  HttpResponse resp = server.Handle({"GET", "/queries/sinkbound/doctor", ""});
  EXPECT_EQ(resp.status, 200);
  auto body = Json::Parse(resp.body);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body->Get("topVerdict").string_value(), "sink-bound");
  EXPECT_GE(body->Get("findings").array_items().size(), 1u);
  EXPECT_EQ(server.Handle({"GET", "/queries/nope/doctor", ""}).status, 404);

  (*query)->Stop();
  ExpectOfflineParity(dir, "sink-bound");
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

// A query that drains its input instantly and then waits on the source is
// mostly idle with zero backlog: source-starved.
TEST(DoctorTest, StarvedSourceYieldsSourceStarved) {
  std::string dir = TempDir();
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.checkpoint_dir = dir;
  opts.query_name = "starved";

  auto query = StreamingQuery::Start(CountByCountry(stream), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  // Arrivals are far slower than processing: the gap between triggers is
  // charged to trigger_wait_nanos of the next epoch. A loaded test machine
  // can stretch epoch processing, so keep feeding starved epochs until the
  // idle fraction dominates (bounded so a real regression still fails).
  DoctorReport report;
  for (int i = 0; i < 40; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    ASSERT_TRUE(stream->AddData({Click("ca", i)}).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    if (i < 4) continue;
    report = OnlineDiagnosis(**query, "starved");
    if (report.top_verdict() == "source-starved") break;
  }
  ASSERT_EQ(report.top_verdict(), "source-starved") << report.Render();
  EXPECT_GT(report.findings.front()
                .evidence.Get("idleFraction")
                .double_value(),
            0.6);
  EXPECT_EQ(report.findings.front()
                .evidence.Get("lastBacklogRows")
                .int_value(),
            0);

  (*query)->Stop();
  ExpectOfflineParity(dir, "source-starved");
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

// Grouping keys chosen to collide on one state shard (via the store's own
// stable hash) leave the shard breakdown maximally imbalanced:
// stateful-shard-skew.
TEST(DoctorTest, SkewedKeysYieldStatefulShardSkew) {
  // The GroupBy state key is the encoded key row (arity byte + encoded
  // values), so the test can precompute which shard a country lands on and
  // pick ~80 countries that all hash to shard 0 of 4.
  std::vector<std::string> hot;
  for (int i = 0; static_cast<int>(hot.size()) < 80; ++i) {
    std::string country = "c" + std::to_string(i);
    std::string enc;
    EncodeRow({Value::Str(country)}, &enc);
    if (ShardedStateStore::StableHashKey(enc) % 4 == 0) hot.push_back(country);
  }

  std::string dir = TempDir();
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 2;
  opts.num_state_shards = 4;
  opts.checkpoint_dir = dir;
  opts.query_name = "skew";

  auto query = StreamingQuery::Start(CountByCountry(stream), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (int epoch = 0; epoch < 2; ++epoch) {
    std::vector<Row> rows;
    for (const std::string& country : hot) rows.push_back(Click(country, epoch));
    ASSERT_TRUE(stream->AddData(std::move(rows)).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  }

  DoctorReport report = OnlineDiagnosis(**query, "skew");
  ASSERT_EQ(report.top_verdict(), "stateful-shard-skew") << report.Render();
  const Json& evidence = report.findings.front().evidence;
  EXPECT_EQ(evidence.Get("shards").int_value(), 4);
  EXPECT_EQ(evidence.Get("maxShardRows").int_value(), 80);
  EXPECT_EQ(evidence.Get("totalStateRows").int_value(), 80);
  EXPECT_DOUBLE_EQ(evidence.Get("imbalance").double_value(), 4.0);

  (*query)->Stop();
  ExpectOfflineParity(dir, "stateful-shard-skew");
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

// Eight partitions' worth of tasks contending for a one-thread pool spend
// most of their scheduler time queued: scheduler-saturated.
TEST(DoctorTest, UndersizedPoolYieldsSchedulerSaturated) {
  std::string dir = TempDir();
  PoolScheduler pool(1);
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 8);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.num_partitions = 8;
  opts.scheduler = &pool;
  opts.checkpoint_dir = dir;
  opts.query_name = "saturated";

  auto query = StreamingQuery::Start(CountByCountry(stream), sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (int epoch = 0; epoch < 2; ++epoch) {
    std::vector<Row> rows;
    rows.reserve(50000);
    for (int i = 0; i < 50000; ++i) {
      std::string country = "c";
      country += std::to_string(i % 256);
      rows.push_back(Click(country, epoch));
    }
    ASSERT_TRUE(stream->AddData(std::move(rows)).ok());
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  }

  DoctorReport report = OnlineDiagnosis(**query, "saturated");
  ASSERT_EQ(report.top_verdict(), "scheduler-saturated") << report.Render();
  const Json& evidence = report.findings.front().evidence;
  EXPECT_GT(evidence.Get("queuedFraction").double_value(), 0.4);
  EXPECT_EQ(evidence.Get("schedulerParallelism").int_value(), 1);

  (*query)->Stop();
  ExpectOfflineParity(dir, "scheduler-saturated");
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

// --- trend rules over synthetic windows (no live query needed) ------------

TEST(DoctorTest, GrowingWatermarkLagYieldsWatermarkLagging) {
  DoctorInput input;
  input.query_name = "wm";
  for (int i = 0; i < 6; ++i) {
    QueryProgress p;
    p.epoch = i;
    p.duration_nanos = 1000000;
    p.watermark_micros = i * kSec;
    p.watermark_lag_micros = 2 * kSec + i * 4 * kSec;  // 2s -> 22s, growing
    input.window.push_back(p);
  }
  DoctorReport report = Diagnose(input);
  ASSERT_EQ(report.top_verdict(), "watermark-lagging") << report.Render();
  const Json& evidence = report.findings.front().evidence;
  EXPECT_EQ(evidence.Get("lagFirstMicros").int_value(), 2 * kSec);
  EXPECT_EQ(evidence.Get("lagLastMicros").int_value(), 22 * kSec);
}

TEST(DoctorTest, LargeConstantWatermarkLagIsHealthy) {
  // A big but flat lag is just the configured watermark delay, not a
  // falling-behind pipeline.
  DoctorInput input;
  for (int i = 0; i < 6; ++i) {
    QueryProgress p;
    p.epoch = i;
    p.duration_nanos = 1000000;
    p.watermark_micros = i * kSec;
    p.watermark_lag_micros = 30 * kSec;
    input.window.push_back(p);
  }
  EXPECT_EQ(Diagnose(input).top_verdict(), "healthy");
}

TEST(DoctorTest, UnboundedStateYieldsStateGrowth) {
  DoctorInput input;
  input.query_name = "growth";
  for (int i = 0; i < 6; ++i) {
    QueryProgress p;
    p.epoch = i;
    p.duration_nanos = 1000000;
    p.state_entries = 500 * (i + 1);  // 500 -> 3000: 6x over the window
    input.window.push_back(p);
  }
  DoctorReport report = Diagnose(input);
  ASSERT_EQ(report.top_verdict(), "state-growth") << report.Render();
  EXPECT_DOUBLE_EQ(
      report.findings.front().evidence.Get("growthFactor").double_value(),
      6.0);
}

TEST(DoctorTest, QuietWindowIsHealthy) {
  DoctorInput input;
  input.query_name = "quiet";
  for (int i = 0; i < 8; ++i) {
    QueryProgress p;
    p.epoch = i;
    p.duration_nanos = 1000000;
    p.state_entries = 100;
    input.window.push_back(p);
  }
  DoctorReport report = Diagnose(input);
  EXPECT_TRUE(report.findings.empty()) << report.Render();
  EXPECT_EQ(report.top_verdict(), "healthy");
  EXPECT_NE(report.Render().find("healthy"), std::string::npos);
}

TEST(DoctorTest, FindingsAreRankedByScore) {
  // Severe sink-bound (0.9) plus mild state growth (2x -> score 0.5): the
  // report must rank the sink first.
  DoctorInput input;
  input.query_name = "ranked";
  for (int i = 0; i < 6; ++i) {
    QueryProgress p;
    p.epoch = i;
    p.duration_nanos = 10000000;
    p.sink_commit_nanos = 9000000;
    p.state_entries = 600 + 120 * i;  // 600 -> 1200
    input.window.push_back(p);
  }
  DoctorReport report = Diagnose(input);
  ASSERT_EQ(report.findings.size(), 2u) << report.Render();
  EXPECT_EQ(report.findings[0].verdict, "sink-bound");
  EXPECT_EQ(report.findings[1].verdict, "state-growth");
  EXPECT_GE(report.findings[0].score, report.findings[1].score);
  EXPECT_NE(report.Render().find("[sink-bound]"), std::string::npos);
}

TEST(DoctorTest, DiagnoseHistoryIsNotFoundWithoutHistory) {
  std::string dir = TempDir();
  auto report = DiagnoseHistory(dir);
  EXPECT_TRUE(report.status().IsNotFound()) << report.status().ToString();
  ASSERT_TRUE(RemoveDirRecursive(dir).ok());
}

}  // namespace
}  // namespace sstreaming

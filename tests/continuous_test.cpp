#include "exec/continuous.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

ContinuousQuery::Options FastOptions() {
  ContinuousQuery::Options opts;
  opts.epoch_interval_micros = 20000;
  opts.poll_sleep_micros = 100;
  return opts;
}

void WaitFor(const std::function<bool()>& cond, int64_t timeout_ms = 5000) {
  int64_t waited = 0;
  while (!cond() && waited < timeout_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    waited += 2;
  }
}

TEST(ContinuousTest, MapPipelineDeliversRecords) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream)
                     .Where(Gt(Col("v"), Lit(0)))
                     .Select({As(Col("k"), "k"), As(Mul(Col("v"), Lit(2)),
                                                    "v2")});
  auto query = ContinuousQuery::Start(df, sink, FastOptions());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({{Value::Str("a"), Value::Int64(1),
                                Value::Timestamp(1)},
                               {Value::Str("b"), Value::Int64(-1),
                                Value::Timestamp(2)},
                               {Value::Str("c"), Value::Int64(3),
                                Value::Timestamp(3)}})
                  .ok());
  // Wait for the filtered record too: records_processed() counts all three
  // inputs, and the "b" row can lose the race with Stop() under load.
  WaitFor([&] {
    return sink->Snapshot().size() >= 2 &&
           (*query)->records_processed() >= 3;
  });
  (*query)->Stop();
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Str("a"));
  EXPECT_EQ(rows[0][1], Value::Int64(2));
  EXPECT_EQ(rows[1][1], Value::Int64(6));
  EXPECT_EQ((*query)->records_processed(), 3);
}

TEST(ContinuousTest, RejectsAggregations) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"k"}).Count();
  auto query = ContinuousQuery::Start(df, sink, FastOptions());
  ASSERT_FALSE(query.ok());
  EXPECT_TRUE(query.status().IsUnsupportedOperation());
}

TEST(ContinuousTest, RejectsStreamStreamJoin) {
  auto s1 = std::make_shared<MemoryStream>("s1", EventSchema(), 1);
  auto s2 = std::make_shared<MemoryStream>("s2", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(s1).Join(DataFrame::ReadStream(s2), {"k"});
  EXPECT_FALSE(ContinuousQuery::Start(df, sink, FastOptions()).ok());
}

TEST(ContinuousTest, EpochMarkersAdvanceOffsets) {
  auto dir = MakeTempDir("sstreaming_continuous_test");
  ASSERT_TRUE(dir.ok());
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream);
  ContinuousQuery::Options opts = FastOptions();
  opts.checkpoint_dir = *dir;
  {
    auto query = ContinuousQuery::Start(df, sink, opts);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE(stream->AddData({{Value::Str("a"), Value::Int64(1),
                                  Value::Timestamp(1)}})
                    .ok());
    WaitFor([&] { return sink->Snapshot().size() >= 1; });
    (*query)->Stop();  // writes a final epoch marker
  }
  auto wal = WriteAheadLog::Open(*dir + "/wal").TakeValue();
  auto committed = wal.LatestCommittedEpoch();
  ASSERT_TRUE(committed.ok());
  ASSERT_TRUE(committed->has_value());
  auto plan = wal.ReadPlan(**committed);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->sources[0].end[0], 1);

  // Restart resumes after the committed offsets: only new records flow.
  ASSERT_TRUE(stream->AddData({{Value::Str("b"), Value::Int64(2),
                                Value::Timestamp(2)}})
                  .ok());
  auto sink2 = std::make_shared<MemorySink>();
  {
    auto query = ContinuousQuery::Start(df, sink2, opts);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    WaitFor([&] { return sink2->Snapshot().size() >= 1; });
    (*query)->Stop();
  }
  auto rows = sink2->SortedSnapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Str("b"));
  RemoveDirRecursive(*dir).ok();
}

TEST(ContinuousTest, LowLatencyDelivery) {
  // Records should reach the sink in well under one microbatch interval.
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  std::atomic<int64_t> delivered_at{0};
  auto sink = std::make_shared<ForeachSink>(
      [&](int64_t, OutputMode, const std::vector<Row>&) -> Status {
        delivered_at.store(MonotonicNanos());
        return Status::OK();
      });
  auto query =
      ContinuousQuery::Start(DataFrame::ReadStream(stream), sink,
                             FastOptions());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // warm up
  int64_t t0 = MonotonicNanos();
  ASSERT_TRUE(stream->AddData({{Value::Str("x"), Value::Int64(1),
                                Value::Timestamp(1)}})
                  .ok());
  WaitFor([&] { return delivered_at.load() != 0; });
  (*query)->Stop();
  ASSERT_NE(delivered_at.load(), 0);
  int64_t latency_ms = (delivered_at.load() - t0) / 1000000;
  EXPECT_LT(latency_ms, 200) << "continuous mode must deliver quickly";
}

}  // namespace
}  // namespace sstreaming

// Vectorized hot path: selection-vector semantics on RecordBatch, the
// FilterExec zero-copy contract, the per-epoch Arena, pipeline fusion
// structure + per-stage accounting, and the differential battery asserting
// the selection-aware / fused execution strategies produce byte-identical
// sink output to the fully materializing path on all three stateful
// pipelines (docs/VECTORIZED_EXEC.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "connectors/memory.h"
#include "exec/streaming_query.h"
#include "physical/fused_pipeline.h"
#include "physical/operators.h"
#include "runtime/scheduler.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr EventSchema() {
  return Schema::Make({{"k", TypeId::kInt64, false},
                       {"s", TypeId::kString, true},
                       {"v", TypeId::kFloat64, true}});
}

RecordBatchPtr RandomBatch(int64_t n, uint64_t seed) {
  Random rng(seed);
  ColumnPtr k = Column::Make(TypeId::kInt64);
  ColumnPtr s = Column::Make(TypeId::kString);
  ColumnPtr v = Column::Make(TypeId::kFloat64);
  for (int64_t i = 0; i < n; ++i) {
    k->AppendInt64(static_cast<int64_t>(rng.Uniform(50)));
    if (rng.OneIn(0.1)) {
      s->AppendNull();
    } else {
      // std::string("s") rather than "s": gcc 12's -Wrestrict false-fires
      // on operator+(const char*, string&&) under -O2 (PR 105329).
      s->AppendString(std::string("s") + std::to_string(rng.Uniform(10)));
    }
    if (rng.OneIn(0.1)) {
      v->AppendNull();
    } else {
      v->AppendFloat64(rng.NextDouble());
    }
  }
  return RecordBatch::Make(EventSchema(), {k, s, v});
}

// ---------------------------------------------------------------------------
// Selection-vector semantics on RecordBatch.
// ---------------------------------------------------------------------------

TEST(SelectionVectorTest, ViewSelectsLogicalRowsWithoutCopying) {
  RecordBatchPtr base = RandomBatch(10, 1);
  RecordBatchPtr view =
      RecordBatch::MakeView(base, SelectionVector::FromVector({5, 0, 9, 3}));
  ASSERT_TRUE(view->has_selection());
  EXPECT_EQ(view->num_rows(), 4);
  EXPECT_EQ(view->physical_rows(), 10);
  // Columns are shared, not copied.
  for (int c = 0; c < base->num_columns(); ++c) {
    EXPECT_EQ(view->column(c).get(), base->column(c).get());
  }
  // Row-level accessors see the logical view, in selection order.
  const int32_t idx[] = {5, 0, 9, 3};
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(CompareRows(view->RowAt(i), base->RowAt(idx[i])), 0);
    EXPECT_EQ(view->PhysIndex(i), idx[i]);
  }
  EXPECT_EQ(view->ToRows().size(), 4u);
}

TEST(SelectionVectorTest, ViewOverViewComposesToPhysicalIndices) {
  RecordBatchPtr base = RandomBatch(10, 2);
  RecordBatchPtr v1 =
      RecordBatch::MakeView(base, SelectionVector::FromVector({5, 0, 9, 3}));
  // Logical rows {2, 0} of v1 are physical rows {9, 5} of base.
  RecordBatchPtr v2 =
      RecordBatch::MakeView(v1, SelectionVector::FromVector({2, 0}));
  ASSERT_EQ(v2->num_rows(), 2);
  EXPECT_EQ(v2->PhysIndex(0), 9);
  EXPECT_EQ(v2->PhysIndex(1), 5);
  EXPECT_EQ(CompareRows(v2->RowAt(0), base->RowAt(9)), 0);
  EXPECT_EQ(CompareRows(v2->RowAt(1), base->RowAt(5)), 0);
}

TEST(SelectionVectorTest, EmptySelectionIsLogicallyEmpty) {
  RecordBatchPtr base = RandomBatch(10, 3);
  RecordBatchPtr view = RecordBatch::MakeView(base, SelectionVector());
  ASSERT_TRUE(view->has_selection());
  EXPECT_EQ(view->num_rows(), 0);
  EXPECT_EQ(view->physical_rows(), 10);
  EXPECT_TRUE(view->ToRows().empty());
  RecordBatchPtr compact = RecordBatch::Materialize(view);
  EXPECT_FALSE(compact->has_selection());
  EXPECT_EQ(compact->num_rows(), 0);
}

TEST(SelectionVectorTest, MaterializeWithoutSelectionIsTheSameBatch) {
  RecordBatchPtr base = RandomBatch(10, 4);
  // The no-selection fast path must not copy: pointer identity.
  EXPECT_EQ(RecordBatch::Materialize(base).get(), base.get());
}

TEST(SelectionVectorTest, MaterializeCompactsAndPreservesIngest) {
  RecordBatchPtr base = RandomBatch(10, 5);
  base->set_ingest_micros(12345);
  RecordBatchPtr view =
      RecordBatch::MakeView(base, SelectionVector::FromVector({7, 1, 4}));
  EXPECT_EQ(view->ingest_micros(), 12345);
  RecordBatchPtr compact = RecordBatch::Materialize(view);
  ASSERT_FALSE(compact->has_selection());
  ASSERT_EQ(compact->num_rows(), 3);
  EXPECT_EQ(compact->physical_rows(), 3);
  EXPECT_EQ(compact->ingest_micros(), 12345);
  EXPECT_EQ(compact->ToRows(), view->ToRows());
}

TEST(SelectionVectorTest, RowShapeOperationsSeeTheLogicalView) {
  RecordBatchPtr base = RandomBatch(12, 6);
  RecordBatchPtr view = RecordBatch::MakeView(
      base, SelectionVector::FromVector({11, 2, 7, 0, 5}));

  // Filter over the logical rows.
  std::vector<uint8_t> mask = {1, 0, 1, 0, 1};
  RecordBatchPtr filtered = view->Filter(mask);
  ASSERT_EQ(filtered->num_rows(), 3);
  EXPECT_EQ(CompareRows(filtered->RowAt(0), base->RowAt(11)), 0);
  EXPECT_EQ(CompareRows(filtered->RowAt(1), base->RowAt(7)), 0);
  EXPECT_EQ(CompareRows(filtered->RowAt(2), base->RowAt(5)), 0);

  // Gather over the logical rows.
  RecordBatchPtr gathered = view->Gather({4, 4, 1});
  ASSERT_EQ(gathered->num_rows(), 3);
  EXPECT_EQ(CompareRows(gathered->RowAt(0), base->RowAt(5)), 0);
  EXPECT_EQ(CompareRows(gathered->RowAt(1), base->RowAt(5)), 0);
  EXPECT_EQ(CompareRows(gathered->RowAt(2), base->RowAt(2)), 0);

  // Slice over the logical rows.
  RecordBatchPtr sliced = view->Slice(1, 2);
  ASSERT_EQ(sliced->num_rows(), 2);
  EXPECT_EQ(CompareRows(sliced->RowAt(0), base->RowAt(2)), 0);
  EXPECT_EQ(CompareRows(sliced->RowAt(1), base->RowAt(7)), 0);

  // SelectColumns keeps the logical view.
  RecordBatchPtr cols = view->SelectColumns({0});
  ASSERT_EQ(cols->num_rows(), 5);
  EXPECT_EQ(cols->RowAt(0).size(), 1u);
  EXPECT_EQ(cols->RowAt(0)[0], base->RowAt(11)[0]);
}

TEST(SelectionVectorTest, ConcatOverViewsKeepsRowsAndOldestIngest) {
  RecordBatchPtr a = RandomBatch(6, 7);
  a->set_ingest_micros(200);
  RecordBatchPtr b = RandomBatch(6, 8);
  b->set_ingest_micros(50);
  RecordBatchPtr va =
      RecordBatch::MakeView(a, SelectionVector::FromVector({3, 1}));
  RecordBatchPtr vb =
      RecordBatch::MakeView(b, SelectionVector::FromVector({0, 5, 2}));
  RecordBatchPtr merged = RecordBatch::Concat(EventSchema(), {va, vb});
  ASSERT_EQ(merged->num_rows(), 5);
  EXPECT_EQ(CompareRows(merged->RowAt(0), a->RowAt(3)), 0);
  EXPECT_EQ(CompareRows(merged->RowAt(1), a->RowAt(1)), 0);
  EXPECT_EQ(CompareRows(merged->RowAt(2), b->RowAt(0)), 0);
  EXPECT_EQ(CompareRows(merged->RowAt(3), b->RowAt(5)), 0);
  EXPECT_EQ(CompareRows(merged->RowAt(4), b->RowAt(2)), 0);
  // The sink-side latency stamp is the oldest contributor's.
  EXPECT_EQ(merged->ingest_micros(), 50);
}

// ---------------------------------------------------------------------------
// FilterExec's zero-copy contract.
// ---------------------------------------------------------------------------

/// Emits exactly the given batches, one per partition — gives the tests
/// pointer-level control over what an operator's child produces.
class FixedOp : public PhysOp {
 public:
  FixedOp(int op_id, SchemaPtr schema, std::vector<RecordBatchPtr> batches)
      : PhysOp(op_id, std::move(schema), {}), batches_(std::move(batches)) {}
  std::string name() const override { return "Fixed"; }
  Result<std::vector<RecordBatchPtr>> ExecuteImpl(ExecContext*) override {
    return batches_;
  }

 private:
  std::vector<RecordBatchPtr> batches_;
};

struct ExecHarness {
  InlineScheduler scheduler;
  StateManager state{"", 0, ShardedStateStore::Options()};
  Arena arena;
  ExecContext ctx;

  ExecHarness() {
    ctx.epoch = 1;
    ctx.scheduler = &scheduler;
    ctx.state = &state;
    ctx.arena = &arena;
  }
};

ExprPtr ResolvedPred(ExprPtr raw) {
  return raw->Resolve(*EventSchema()).TakeValue();
}

TEST(FilterExecSelectionTest, FullSurvivalPassesTheInputBatchThrough) {
  RecordBatchPtr batch = RandomBatch(100, 10);
  auto source = std::make_shared<FixedOp>(
      0, EventSchema(), std::vector<RecordBatchPtr>{batch});
  auto filter = std::make_shared<FilterExec>(
      1, source, ResolvedPred(Ge(Col("k"), Lit(int64_t{0}))),
      /*emit_selection=*/true);
  ExecHarness h;
  auto out = filter->Execute(&h.ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->size(), 1u);
  // Every row survives: the fast path must hand back the very same batch,
  // no selection vector and no copy.
  EXPECT_EQ((*out)[0].get(), batch.get());
  EXPECT_FALSE((*out)[0]->has_selection());
}

TEST(FilterExecSelectionTest, PartialSurvivalEmitsAViewNotACopy) {
  RecordBatchPtr batch = RandomBatch(200, 11);
  auto source = std::make_shared<FixedOp>(
      0, EventSchema(), std::vector<RecordBatchPtr>{batch});
  ExprPtr pred = ResolvedPred(Lt(Col("k"), Lit(int64_t{25})));

  ExecHarness h1;
  auto selecting = std::make_shared<FilterExec>(1, source, pred, true);
  auto sel_out = selecting->Execute(&h1.ctx);
  ASSERT_TRUE(sel_out.ok()) << sel_out.status().ToString();

  ExecHarness h2;
  auto materializing = std::make_shared<FilterExec>(1, source, pred, false);
  auto mat_out = materializing->Execute(&h2.ctx);
  ASSERT_TRUE(mat_out.ok()) << mat_out.status().ToString();

  ASSERT_EQ(sel_out->size(), 1u);
  const RecordBatchPtr& view = (*sel_out)[0];
  ASSERT_TRUE(view->has_selection());
  // Zero-copy: the view shares the input's column storage.
  EXPECT_EQ(view->column(0).get(), batch->column(0).get());
  EXPECT_LT(view->num_rows(), batch->num_rows());
  EXPECT_GT(view->num_rows(), 0);
  // Logical content identical to the materializing path.
  EXPECT_EQ(view->ToRows(), (*mat_out)[0]->ToRows());
}

TEST(FilterExecSelectionTest, NoSurvivorsYieldsAnEmptyLogicalBatch) {
  RecordBatchPtr batch = RandomBatch(50, 12);
  auto source = std::make_shared<FixedOp>(
      0, EventSchema(), std::vector<RecordBatchPtr>{batch});
  auto filter = std::make_shared<FilterExec>(
      1, source, ResolvedPred(Lt(Col("k"), Lit(int64_t{-1}))), true);
  ExecHarness h;
  auto out = filter->Execute(&h.ctx);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ((*out)[0]->num_rows(), 0);
  EXPECT_TRUE(RecordBatch::Materialize((*out)[0])->ToRows().empty());
}

// ---------------------------------------------------------------------------
// Arena.
// ---------------------------------------------------------------------------

TEST(ArenaTest, BumpAllocationsAreDistinctAlignedAndWritable) {
  Arena arena(1024);
  auto [a, ka] = arena.AllocSpan<int32_t>(10);
  auto [b, kb] = arena.AllocSpan<int64_t>(10);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % alignof(int32_t), 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % alignof(int64_t), 0u);
  for (int i = 0; i < 10; ++i) a[i] = i;
  for (int i = 0; i < 10; ++i) b[i] = 100 + i;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a[i], i);
    EXPECT_EQ(b[i], 100 + i);
  }
  EXPECT_GE(arena.bytes_allocated(),
            static_cast<int64_t>(10 * sizeof(int32_t) + 10 * sizeof(int64_t)));
}

TEST(ArenaTest, ResetRecyclesTheChunkWhenNoKeepaliveIsLive) {
  Arena arena(1 << 16);
  {
    auto [p, keep] = arena.AllocSpan<int32_t>(100);
    p[0] = 1;  // touch
  }  // keepalive dropped -> arena holds the only reference
  int64_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0);
  arena.Reset();
  // The newest chunk is kept for reuse; reservation does not grow across
  // epochs of identical demand.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  auto [q, keep2] = arena.AllocSpan<int32_t>(100);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, LiveKeepaliveSurvivesResetUncorrupted) {
  Arena arena(1 << 12);
  auto [old_ptr, old_keep] = arena.AllocSpan<int32_t>(64);
  for (int i = 0; i < 64; ++i) old_ptr[i] = 7000 + i;
  // A buffer (incorrectly) held across the epoch boundary: Reset() must not
  // hand its chunk to the next epoch while the keepalive is live.
  arena.Reset();
  auto [new_ptr, new_keep] = arena.AllocSpan<int32_t>(64);
  for (int i = 0; i < 64; ++i) new_ptr[i] = -1;
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(old_ptr[i], 7000 + i) << "stale buffer was recycled while live";
  }
}

// ---------------------------------------------------------------------------
// Pipeline fusion: rewrite structure, execution equivalence, accounting.
// ---------------------------------------------------------------------------

/// source(0) -> Filter(1) -> Project(2): the canonical fusable chain.
struct ChainPlan {
  std::shared_ptr<StaticSourceExec> source;
  std::shared_ptr<FilterExec> filter;
  std::shared_ptr<ProjectExec> project;
  PhysOpPtr root;
};

ChainPlan MakeChain(const RecordBatchPtr& batch, bool emit_selection) {
  ChainPlan p;
  p.source = std::make_shared<StaticSourceExec>(
      0, EventSchema(), std::vector<RecordBatchPtr>{batch}, 1);
  p.filter = std::make_shared<FilterExec>(
      1, p.source, ResolvedPred(Lt(Col("k"), Lit(int64_t{30}))),
      emit_selection);
  SchemaPtr out_schema = Schema::Make(
      {{"k2", TypeId::kInt64, false}, {"s", TypeId::kString, true}});
  std::vector<NamedExpr> exprs = {
      {ResolvedPred(Mul(Col("k"), Lit(int64_t{2}))), "k2"},
      {ResolvedPred(Col("s")), "s"}};
  p.project =
      std::make_shared<ProjectExec>(2, p.filter, out_schema, exprs);
  p.root = p.project;
  return p;
}

TEST(PipelineFusionTest, ChainsOfTwoOrMoreStatelessOpsFuse) {
  ChainPlan plan = MakeChain(RandomBatch(100, 20), true);
  int next_id = 3;
  PhysOpPtr fused_root = FusePipelines(plan.root, &next_id, true);
  auto* fused = dynamic_cast<FusedPipelineExec*>(fused_root.get());
  ASSERT_NE(fused, nullptr) << fused_root->TreeString();
  // Fresh op_id above the existing range; stages keep the originals
  // (bottom -> top), and the chain's child is spliced directly underneath.
  EXPECT_EQ(fused->op_id(), 3);
  EXPECT_EQ(next_id, 4);
  ASSERT_EQ(fused->stages().size(), 2u);
  EXPECT_EQ(fused->stages()[0].op_id, 1);
  EXPECT_EQ(fused->stages()[0].kind, FusedPipelineExec::Stage::Kind::kFilter);
  EXPECT_EQ(fused->stages()[1].op_id, 2);
  EXPECT_EQ(fused->stages()[1].kind, FusedPipelineExec::Stage::Kind::kProject);
  ASSERT_EQ(fused->children().size(), 1u);
  EXPECT_EQ(fused->children()[0].get(), plan.source.get());
  EXPECT_EQ(fused->schema()->ToString(), plan.project->schema()->ToString());
}

TEST(PipelineFusionTest, StandaloneStatelessOpsAreLeftAlone) {
  RecordBatchPtr batch = RandomBatch(10, 21);
  auto source = std::make_shared<StaticSourceExec>(
      0, EventSchema(), std::vector<RecordBatchPtr>{batch}, 1);
  auto filter = std::make_shared<FilterExec>(
      1, source, ResolvedPred(Lt(Col("k"), Lit(int64_t{30}))), true);
  int next_id = 2;
  PhysOpPtr rewritten = FusePipelines(filter, &next_id, true);
  // A chain of one is not worth a fused node.
  EXPECT_EQ(rewritten.get(), filter.get());
  EXPECT_EQ(next_id, 2);
}

TEST(PipelineFusionTest, FusedExecutionMatchesUnfusedByteForByte) {
  RecordBatchPtr batch = RandomBatch(500, 22);
  for (bool emit_selection : {false, true}) {
    SCOPED_TRACE(std::string("emit_selection=") +
                 (emit_selection ? "true" : "false"));
    ChainPlan unfused = MakeChain(batch, emit_selection);
    ExecHarness h1;
    auto expect = unfused.root->Execute(&h1.ctx);
    ASSERT_TRUE(expect.ok()) << expect.status().ToString();

    ChainPlan plan = MakeChain(batch, emit_selection);
    int next_id = 3;
    PhysOpPtr fused = FusePipelines(plan.root, &next_id, emit_selection);
    ExecHarness h2;
    auto got = fused->Execute(&h2.ctx);
    ASSERT_TRUE(got.ok()) << got.status().ToString();

    ASSERT_EQ(got->size(), expect->size());
    for (size_t p = 0; p < got->size(); ++p) {
      EXPECT_EQ(RecordBatch::Materialize((*got)[p])->ToRows(),
                RecordBatch::Materialize((*expect)[p])->ToRows());
    }

    // Per-stage accounting ties out: the original op_ids are credited with
    // the same row counts the standalone operators produced.
    for (int op_id : {1, 2}) {
      std::lock_guard<std::mutex> l1(h1.ctx.metrics_mu);
      std::lock_guard<std::mutex> l2(h2.ctx.metrics_mu);
      ASSERT_TRUE(h2.ctx.op_stats.count(op_id)) << "op " << op_id;
      EXPECT_EQ(h2.ctx.op_stats[op_id].rows_out,
                h1.ctx.op_stats[op_id].rows_out)
          << "op " << op_id;
    }
  }
}

TEST(PipelineFusionTest, ProfileNodesChainStagesUnderOriginalIds) {
  ChainPlan plan = MakeChain(RandomBatch(10, 23), true);
  int next_id = 3;
  PhysOpPtr root = FusePipelines(plan.root, &next_id, true);
  std::vector<OpProfileNode> nodes;
  root->CollectProfileNodes(&nodes);
  // Fused node + one node per stage, wired fused <- Project <- Filter <-
  // source, reproducing the unfused profile topology.
  ASSERT_EQ(nodes.size(), 3u);
  std::map<int, const OpProfileNode*> by_id;
  for (const auto& n : nodes) by_id[n.op_id] = &n;
  ASSERT_TRUE(by_id.count(3) && by_id.count(2) && by_id.count(1));
  EXPECT_EQ(by_id[3]->child_ids, std::vector<int>{2});
  EXPECT_EQ(by_id[2]->child_ids, std::vector<int>{1});
  EXPECT_EQ(by_id[1]->child_ids, std::vector<int>{0});
  EXPECT_NE(by_id[3]->name.find("FusedPipeline"), std::string::npos);
  EXPECT_NE(by_id[1]->name.find("Filter"), std::string::npos);
  EXPECT_EQ(by_id[2]->name, "Project");
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE tie-out through a live query.
// ---------------------------------------------------------------------------

SchemaPtr StreamSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

TEST(PipelineFusionTest, QueryProgressRowAccountingTiesOutUnderFusion) {
  auto stream = std::make_shared<MemoryStream>("s", StreamSchema(), 2);
  DataFrame df = DataFrame::ReadStream(stream)
                     .Where(Lt(Col("v"), Lit(int64_t{40})))
                     .Select({NamedExpr{Col("k"), "k"},
                              NamedExpr{Add(Col("v"), Lit(int64_t{1})), "v1"}});
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.num_partitions = 2;
  opts.fuse_pipelines = true;
  opts.selection_vectors = true;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) {
    // std::string("k"): gcc 12 -Wrestrict false positive (PR 105329).
    rows.push_back({Value::Str(std::string("k") + std::to_string(i % 8)),
                    Value::Int64(i % 80), Value::Timestamp(i * kSec)});
  }
  ASSERT_TRUE(stream->AddData(rows).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  QueryProgress last;
  ASSERT_TRUE((*query)->GetLastProgress(&last));
  const OperatorProgress* fused = nullptr;
  const OperatorProgress* filter = nullptr;
  const OperatorProgress* project = nullptr;
  for (const OperatorProgress& op : last.operators) {
    if (op.name.rfind("FusedPipeline", 0) == 0) fused = &op;
    if (op.name.rfind("Filter", 0) == 0) filter = &op;
    if (op.name == "Project") project = &op;
  }
  // Fusion keeps the original operators visible in the profile, with row
  // totals identical to what the unfused plan would report.
  ASSERT_NE(fused, nullptr);
  ASSERT_NE(filter, nullptr);
  ASSERT_NE(project, nullptr);
  EXPECT_EQ(filter->rows_in, 100);
  // v = i % 80 over 100 rows: i in [0,40) and i in [80,100) pass v < 40.
  EXPECT_EQ(filter->rows_out, 60);
  EXPECT_EQ(project->rows_in, filter->rows_out);
  EXPECT_EQ(project->rows_out, project->rows_in);
  EXPECT_EQ(fused->rows_out, project->rows_out);
  EXPECT_EQ(sink->SortedSnapshot().size(), 60u);
  (*query)->Stop();
}

// ---------------------------------------------------------------------------
// Differential battery: {fuse_pipelines} x {selection_vectors} over the
// three stateful pipelines must be byte-identical to the fully
// materializing golden, per epoch and in final state accounting.
// ---------------------------------------------------------------------------

/// Records each epoch's first delivery (sorted) while delegating table
/// semantics to MemorySink (same harness as the sharded-state battery).
class EpochRecordingSink : public Sink {
 public:
  bool SupportsMode(OutputMode mode) const override {
    return inner_.SupportsMode(mode);
  }
  Status CommitEpoch(int64_t epoch, OutputMode mode, int num_key_columns,
                     const std::vector<RecordBatchPtr>& batches) override {
    SS_RETURN_IF_ERROR(
        inner_.CommitEpoch(epoch, mode, num_key_columns, batches));
    std::vector<Row> rows;
    for (const auto& b : batches) {
      auto brows = b->ToRows();
      rows.insert(rows.end(), brows.begin(), brows.end());
    }
    std::sort(rows.begin(), rows.end(), RowLess());
    auto it = epochs_.find(epoch);
    if (it != epochs_.end() && it->second != rows) ++redelivery_mismatches_;
    epochs_[epoch] = std::move(rows);
    return Status::OK();
  }
  std::vector<Row> SortedSnapshot() const { return inner_.SortedSnapshot(); }
  const std::map<int64_t, std::vector<Row>>& epochs() const { return epochs_; }
  int64_t redelivery_mismatches() const { return redelivery_mismatches_; }

 private:
  MemorySink inner_;
  std::map<int64_t, std::vector<Row>> epochs_;
  int64_t redelivery_mismatches_ = 0;
};

enum class Pipeline { kWindowedAgg, kDedup, kJoin };

struct DifferentialRun {
  std::map<int64_t, std::vector<Row>> epochs;
  std::vector<Row> final_rows;
  int64_t state_rows = 0;
  int64_t state_bytes = 0;
};

SchemaPtr LeftSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"v", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

SchemaPtr RightSchema() {
  return Schema::Make({{"k", TypeId::kString, false},
                       {"rv", TypeId::kInt64, false},
                       {"rtime", TypeId::kTimestamp, false}});
}

/// Deterministic per-round workload, identical across execution strategies.
std::vector<Row> MakeRound(Random* rng, int round, int rows) {
  static const char* kKeys[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                                "zeta", "eta", "theta"};
  std::vector<Row> out;
  out.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t sec = round * 6 + static_cast<int64_t>(rng->Uniform(8));
    out.push_back({Value::Str(kKeys[rng->Uniform(8)]),
                   Value::Int64(static_cast<int64_t>(rng->Uniform(50))),
                   Value::Timestamp(sec * kSec)});
  }
  return out;
}

/// Every pipeline carries a fusable stateless prefix (Where + Watermark or
/// Where + Project) so the fused/selection paths actually engage before the
/// stateful operator's materialization boundary.
DifferentialRun RunPipeline(Pipeline pipeline, bool fuse, bool selection,
                            uint64_t seed, bool restart_midway) {
  DifferentialRun result;
  auto dir = MakeTempDir("vectorized_diff");
  EXPECT_TRUE(dir.ok());

  auto left = std::make_shared<MemoryStream>("left", LeftSchema(), 2);
  std::shared_ptr<MemoryStream> right;
  DataFrame df = DataFrame::ReadStream(left).Where(
      Lt(Col("v"), Lit(int64_t{40})));
  OutputMode mode = OutputMode::kAppend;
  switch (pipeline) {
    case Pipeline::kWindowedAgg:
      // String group key -> exercises the dictionary key encoding too.
      df = df.WithWatermark("time", 5 * kSec)
               .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "w"),
                         NamedExpr{Col("k"), "k"}})
               .Agg({SumOf(Col("v"), "total")});
      mode = OutputMode::kUpdate;
      break;
    case Pipeline::kDedup:
      df = df.SelectColumns({"k", "v"}).Distinct();
      mode = OutputMode::kAppend;
      break;
    case Pipeline::kJoin:
      right = std::make_shared<MemoryStream>("right", RightSchema(), 2);
      df = df.WithWatermark("time", 5 * kSec)
               .Join(DataFrame::ReadStream(right).WithWatermark("rtime",
                                                                5 * kSec),
                     {"k"});
      mode = OutputMode::kAppend;
      break;
  }

  auto sink = std::make_shared<EpochRecordingSink>();
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 2;
  opts.checkpoint_dir = *dir;
  opts.state_checkpoint_interval = 2;
  opts.enable_tracing = false;
  opts.fuse_pipelines = fuse;
  opts.selection_vectors = selection;

  auto query = StreamingQuery::Start(df, sink, opts);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  if (!query.ok()) return result;

  Random left_rng(seed);
  Random right_rng(seed + 1);
  const int kRounds = 6;
  for (int r = 0; r < kRounds; ++r) {
    EXPECT_TRUE(left->AddData(MakeRound(&left_rng, r, 10)).ok());
    if (right != nullptr) {
      EXPECT_TRUE(right->AddData(MakeRound(&right_rng, r, 10)).ok());
    }
    EXPECT_TRUE((*query)->ProcessAllAvailable().ok());
    if (restart_midway && r == 2) {
      // Crash-recover with the same execution strategy: fused plans must
      // keep checkpoint state dirs and watermark keys stable (the fused
      // node's fresh op_id sits above the original range).
      query->reset();
      query = StreamingQuery::Start(df, sink, opts);
      EXPECT_TRUE(query.ok()) << query.status().ToString();
      if (!query.ok()) return result;
    }
  }

  QueryProgress last;
  EXPECT_TRUE((*query)->GetLastProgress(&last));
  for (const OperatorProgress& op : last.operators) {
    result.state_rows += op.state_rows;
    result.state_bytes += op.state_bytes;
  }
  EXPECT_EQ(sink->redelivery_mismatches(), 0)
      << "recovery replay re-committed an epoch with different rows";
  result.epochs = sink->epochs();
  result.final_rows = sink->SortedSnapshot();
  query->reset();
  RemoveDirRecursive(*dir).ok();
  return result;
}

void ExpectEquivalent(const DifferentialRun& golden,
                      const DifferentialRun& run, bool fuse, bool selection) {
  SCOPED_TRACE(std::string("fuse=") + (fuse ? "1" : "0") + " selection=" +
               (selection ? "1" : "0"));
  ASSERT_EQ(run.epochs.size(), golden.epochs.size());
  for (const auto& [epoch, golden_rows] : golden.epochs) {
    auto it = run.epochs.find(epoch);
    ASSERT_NE(it, run.epochs.end()) << "missing epoch " << epoch;
    EXPECT_EQ(it->second, golden_rows) << "epoch " << epoch << " diverged";
  }
  EXPECT_EQ(run.final_rows, golden.final_rows);
  // Selection vectors and fusion must not change what reaches the state
  // stores: dictionary key encoding is byte-compatible, and batches are
  // materialized at every stateful boundary.
  EXPECT_EQ(run.state_rows, golden.state_rows);
  EXPECT_EQ(run.state_bytes, golden.state_bytes);
}

class VectorizedDifferentialTest
    : public ::testing::TestWithParam<Pipeline> {};

TEST_P(VectorizedDifferentialTest,
       OutputIsByteIdenticalAcrossExecutionStrategies) {
  // Golden: fully materializing, no fusion — the pre-vectorization engine.
  DifferentialRun golden =
      RunPipeline(GetParam(), false, false, 20260811, false);
  ASSERT_FALSE(golden.epochs.empty());
  for (bool fuse : {false, true}) {
    for (bool selection : {false, true}) {
      if (!fuse && !selection) continue;
      DifferentialRun run =
          RunPipeline(GetParam(), fuse, selection, 20260811, false);
      ExpectEquivalent(golden, run, fuse, selection);
    }
  }
}

TEST_P(VectorizedDifferentialTest, EquivalenceHoldsAcrossRestartRecovery) {
  DifferentialRun golden =
      RunPipeline(GetParam(), false, false, 20260812, false);
  ASSERT_FALSE(golden.epochs.empty());
  // The fully vectorized strategy crash-recovers mid-run and must still
  // match the materializing golden epoch for epoch.
  DifferentialRun run = RunPipeline(GetParam(), true, true, 20260812, true);
  ExpectEquivalent(golden, run, true, true);
}

INSTANTIATE_TEST_SUITE_P(AllPipelines, VectorizedDifferentialTest,
                         ::testing::Values(Pipeline::kWindowedAgg,
                                           Pipeline::kDedup, Pipeline::kJoin),
                         [](const auto& info) {
                           switch (info.param) {
                             case Pipeline::kWindowedAgg: return "WindowedAgg";
                             case Pipeline::kDedup: return "Dedup";
                             case Pipeline::kJoin: return "Join";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace sstreaming

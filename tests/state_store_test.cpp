#include "state/state_store.h"

#include <map>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

class StateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_state_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  std::string dir_;
};

TEST_F(StateStoreTest, EmptyOpen) {
  auto store = StateStore::Open(dir_, 0);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->size(), 0);
  EXPECT_EQ((*store)->loaded_version(), 0);
  EXPECT_FALSE((*store)->Get("k").has_value());
}

TEST_F(StateStoreTest, PutGetRemove) {
  auto store = StateStore::Open(dir_, 0).TakeValue();
  store->Put("a", "1");
  store->Put("b", "2");
  EXPECT_EQ(*store->Get("a"), "1");
  EXPECT_TRUE(store->Contains("b"));
  store->Remove("a");
  EXPECT_FALSE(store->Get("a").has_value());
  EXPECT_EQ(store->size(), 1);
}

TEST_F(StateStoreTest, CommitAndRecoverExactVersion) {
  {
    auto store = StateStore::Open(dir_, 0).TakeValue();
    store->Put("k1", "v1");
    ASSERT_TRUE(store->Commit(1).ok());
    store->Put("k2", "v2");
    store->Remove("k1");
    ASSERT_TRUE(store->Commit(2).ok());
  }
  auto v1 = StateStore::Open(dir_, 1).TakeValue();
  EXPECT_EQ(v1->loaded_version(), 1);
  EXPECT_EQ(*v1->Get("k1"), "v1");
  EXPECT_FALSE(v1->Get("k2").has_value());

  auto v2 = StateStore::Open(dir_, 2).TakeValue();
  EXPECT_EQ(v2->loaded_version(), 2);
  EXPECT_FALSE(v2->Get("k1").has_value());
  EXPECT_EQ(*v2->Get("k2"), "v2");
}

TEST_F(StateStoreTest, RecoveryLoadsNewestVersionAtOrBelowRequest) {
  // Checkpoints may lag the requested epoch (paper: async checkpoints).
  {
    auto store = StateStore::Open(dir_, 0).TakeValue();
    store->Put("k", "v3");
    ASSERT_TRUE(store->Commit(3).ok());
  }
  auto store = StateStore::Open(dir_, 10).TakeValue();
  EXPECT_EQ(store->loaded_version(), 3) << "engine must replay epochs 4..10";
  EXPECT_EQ(*store->Get("k"), "v3");
}

TEST_F(StateStoreTest, DeltaChainAcrossManyCommits) {
  StateStore::Options opts;
  opts.snapshot_interval = 5;
  {
    auto store = StateStore::Open(dir_, 0, opts).TakeValue();
    for (int64_t v = 1; v <= 17; ++v) {
      store->Put("key" + std::to_string(v), "val" + std::to_string(v));
      if (v % 3 == 0) store->Remove("key" + std::to_string(v - 1));
      ASSERT_TRUE(store->Commit(v).ok());
    }
    EXPECT_GT(store->delta_commits(), 0);
    EXPECT_GT(store->snapshot_commits(), 0);
  }
  // Recover at an intermediate version and at the tip; compare to a model.
  for (int64_t target : {7, 12, 17}) {
    auto store = StateStore::Open(dir_, target, opts).TakeValue();
    EXPECT_EQ(store->loaded_version(), target);
    std::map<std::string, std::string> model;
    for (int64_t v = 1; v <= target; ++v) {
      model["key" + std::to_string(v)] = "val" + std::to_string(v);
      if (v % 3 == 0) model.erase("key" + std::to_string(v - 1));
    }
    EXPECT_EQ(store->size(), static_cast<int64_t>(model.size()))
        << "at version " << target;
    for (const auto& [k, v] : model) {
      ASSERT_TRUE(store->Get(k).has_value()) << k;
      EXPECT_EQ(*store->Get(k), v);
    }
  }
}

TEST_F(StateStoreTest, CommitVersionsMustIncrease) {
  auto store = StateStore::Open(dir_, 0).TakeValue();
  ASSERT_TRUE(store->Commit(5).ok());
  EXPECT_FALSE(store->Commit(5).ok());
  EXPECT_FALSE(store->Commit(4).ok());
  EXPECT_TRUE(store->Commit(6).ok());
}

TEST_F(StateStoreTest, ReopenedStoreContinuesCommitting) {
  {
    auto store = StateStore::Open(dir_, 0).TakeValue();
    store->Put("a", "1");
    ASSERT_TRUE(store->Commit(1).ok());
  }
  auto store = StateStore::Open(dir_, 1).TakeValue();
  store->Put("b", "2");
  ASSERT_TRUE(store->Commit(2).ok());
  auto reread = StateStore::Open(dir_, 2).TakeValue();
  EXPECT_EQ(*reread->Get("a"), "1");
  EXPECT_EQ(*reread->Get("b"), "2");
}

TEST_F(StateStoreTest, TruncateAfterSupportsRollback) {
  {
    auto store = StateStore::Open(dir_, 0).TakeValue();
    for (int64_t v = 1; v <= 5; ++v) {
      // std::string("v") rather than "v": gcc 12's -Wrestrict false-fires
      // on operator+(const char*, string&&) under -O2 (PR 105329).
      store->Put("k", std::string("v") + std::to_string(v));
      ASSERT_TRUE(store->Commit(v).ok());
    }
  }
  ASSERT_TRUE(StateStore::TruncateAfter(dir_, 2).ok());
  auto store = StateStore::Open(dir_, 5).TakeValue();
  EXPECT_EQ(store->loaded_version(), 2);
  EXPECT_EQ(*store->Get("k"), "v2");
}

TEST_F(StateStoreTest, PurgeBeforeKeepsRecoverability) {
  StateStore::Options opts;
  opts.snapshot_interval = 4;
  {
    auto store = StateStore::Open(dir_, 0, opts).TakeValue();
    for (int64_t v = 1; v <= 12; ++v) {
      store->Put(std::string("k") + std::to_string(v), "v");
      ASSERT_TRUE(store->Commit(v).ok());
    }
  }
  ASSERT_TRUE(StateStore::PurgeBefore(dir_, 10).ok());
  auto store = StateStore::Open(dir_, 12, opts).TakeValue();
  EXPECT_EQ(store->loaded_version(), 12);
  EXPECT_EQ(store->size(), 12);
}

TEST_F(StateStoreTest, BinaryValuesSurvive) {
  std::string key("\x00\x01key", 5);
  std::string value("\x00\xffval", 5);
  {
    auto store = StateStore::Open(dir_, 0).TakeValue();
    store->Put(key, value);
    ASSERT_TRUE(store->Commit(1).ok());
  }
  auto store = StateStore::Open(dir_, 1).TakeValue();
  ASSERT_TRUE(store->Get(key).has_value());
  EXPECT_EQ(*store->Get(key), value);
}

TEST_F(StateStoreTest, ForEachVisitsAll) {
  auto store = StateStore::Open(dir_, 0).TakeValue();
  store->Put("a", "1");
  store->Put("b", "2");
  int count = 0;
  store->ForEach([&](const std::string&, const std::string&) { ++count; });
  EXPECT_EQ(count, 2);
}

// Property test: random op sequences with commits at random epochs recover
// identically to an in-memory model, at every committed version.
class StateStoreFuzzTest : public StateStoreTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(StateStoreFuzzTest, RandomOpsMatchModel) {
  Random rng(static_cast<uint64_t>(GetParam()));
  StateStore::Options opts;
  opts.snapshot_interval = 1 + static_cast<int>(rng.Uniform(6));
  std::map<int64_t, std::map<std::string, std::string>> committed_models;
  {
    auto store = StateStore::Open(dir_, 0, opts).TakeValue();
    std::map<std::string, std::string> model;
    int64_t version = 0;
    for (int i = 0; i < 400; ++i) {
      std::string key = std::string("k") + std::to_string(rng.Uniform(30));
      if (rng.OneIn(0.7)) {
        std::string value =
            std::string("v") + std::to_string(rng.Next() % 1000);
        store->Put(key, value);
        model[key] = value;
      } else {
        store->Remove(key);
        model.erase(key);
      }
      if (rng.OneIn(0.15)) {
        version += 1 + static_cast<int64_t>(rng.Uniform(3));
        ASSERT_TRUE(store->Commit(version).ok());
        committed_models[version] = model;
      }
    }
  }
  for (const auto& [version, model] : committed_models) {
    auto store = StateStore::Open(dir_, version, opts).TakeValue();
    ASSERT_EQ(store->loaded_version(), version);
    ASSERT_EQ(store->size(), static_cast<int64_t>(model.size()))
        << "version " << version;
    for (const auto& [k, v] : model) {
      ASSERT_TRUE(store->Get(k).has_value());
      EXPECT_EQ(*store->Get(k), v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StateStoreFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace sstreaming

#ifndef SSTREAMING_TESTS_CHAOS_HARNESS_H_
#define SSTREAMING_TESTS_CHAOS_HARNESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "connectors/memory.h"
#include "connectors/sink.h"
#include "exec/streaming_query.h"
#include "testing/failpoints.h"

namespace sstreaming {

/// A sink wrapper that enforces the paper's delivery invariants while
/// delegating table semantics to MemorySink:
///  - every epoch's first successful commit is recorded;
///  - a re-commit of an epoch (recovery replay) must deliver byte-identical
///    rows, or the epoch is counted as a mismatch (a duplicate/lost-update
///    bug);
///  - committed epoch numbers must be contiguous (no lost epochs).
class VerifyingSink : public Sink {
 public:
  bool SupportsMode(OutputMode mode) const override {
    return inner_.SupportsMode(mode);
  }
  Status CommitEpoch(int64_t epoch, OutputMode mode, int num_key_columns,
                     const std::vector<RecordBatchPtr>& batches) override;

  std::vector<Row> SortedSnapshot() const { return inner_.SortedSnapshot(); }
  /// Sorted rows of each epoch's first successful delivery.
  const std::map<int64_t, std::vector<Row>>& epoch_rows() const {
    return epoch_rows_;
  }
  /// Epochs whose re-delivery differed from the first delivery.
  const std::vector<int64_t>& mismatched_epochs() const {
    return mismatched_epochs_;
  }
  int64_t commit_calls() const { return commit_calls_; }

 private:
  MemorySink inner_;
  mutable std::mutex mu_;
  std::map<int64_t, std::vector<Row>> epoch_rows_;
  std::vector<int64_t> mismatched_epochs_;
  int64_t commit_calls_ = 0;
};

/// Drives one stateful windowed-aggregation query through a deterministic
/// multi-round workload, optionally with one failpoint armed; every injected
/// failure is treated as a process crash (the query object is destroyed and
/// a new one started from the checkpoint). The same workload without faults
/// is the golden run chaos scenarios are compared against.
class ChaosHarness {
 public:
  /// Which stateful pipeline the harness drives. The aggregation workload
  /// rewrites per-key state every epoch; the stream-stream join workload
  /// also exercises the shard Append fast path (grow-only join state), so
  /// the state.shard.append failpoint only fires under kJoin.
  enum class Workload { kAgg, kJoin };

  struct Options {
    Options() {}
    int rounds = 6;
    int rows_per_round = 8;
    uint64_t seed = 42;         // workload generator seed
    int num_partitions = 2;     // shuffle fan-out and source partitions
    int state_checkpoint_interval = 1;
    /// Keyed-state shards per (operator, partition) store.
    int num_state_shards = 4;
    Workload workload = Workload::kAgg;
    /// Clean stop + restart after this round (0 = never): exercises the
    /// recovery read path even in scenarios whose failpoint lives there.
    int planned_restart_after_round = 3;
    int max_crashes = 25;       // crash-loop circuit breaker
  };

  struct RunResult {
    Status status;        // first non-injected failure, or OK
    int64_t crashes = 0;  // injected failures treated as crashes
    int64_t triggers = 0; // times the armed failpoint actually fired
    std::vector<Row> final_rows;                  // sorted sink table
    std::map<int64_t, std::vector<Row>> epochs;   // per-epoch first deliveries
    std::vector<int64_t> mismatched_epochs;
    int64_t last_epoch = 0;
    std::string checkpoint_dir;  // removed unless keep_checkpoint
  };

  explicit ChaosHarness(Options options) : options_(options) {}

  /// Runs with no failpoint armed. Registers every failpoint site on the
  /// durability path as a side effect, so RegisteredFailpoints() is the
  /// sweep universe afterwards.
  RunResult RunFaultFree() { return Run("", FailpointSpec{}); }

  /// Runs the workload with `failpoint` armed to fire once on its Nth hit.
  RunResult RunWithFault(const std::string& failpoint, int hit);

  /// Checks a faulted run against the golden run; returns OK or a
  /// description of the first violated invariant (prefix consistency,
  /// duplicate-free re-delivery, no lost epochs, WAL/state agreement).
  static Status CheckInvariants(const RunResult& golden,
                                const RunResult& chaos);

  /// All failpoint names seen by the process (run RunFaultFree first).
  static std::vector<std::string> RegisteredFailpoints();

 private:
  RunResult Run(const std::string& failpoint, FailpointSpec spec);

  Options options_;
};

}  // namespace sstreaming

#endif  // SSTREAMING_TESTS_CHAOS_HARNESS_H_

#include "expr/expression.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

SchemaPtr TestSchema() {
  return Schema::Make({{"a", TypeId::kInt64, false},
                       {"b", TypeId::kInt64, true},
                       {"x", TypeId::kFloat64, true},
                       {"s", TypeId::kString, true},
                       {"flag", TypeId::kBool, true},
                       {"ts", TypeId::kTimestamp, false}});
}

RecordBatchPtr TestBatch() {
  return RecordBatch::FromRows(
             TestSchema(),
             {{Value::Int64(1), Value::Int64(10), Value::Float64(0.5),
               Value::Str("ca"), Value::Bool(true), Value::Timestamp(1000)},
              {Value::Int64(2), Value::Null(), Value::Float64(1.5),
               Value::Str("ny"), Value::Bool(false), Value::Timestamp(2500)},
              {Value::Int64(3), Value::Int64(30), Value::Null(),
               Value::Null(), Value::Null(), Value::Timestamp(4999)}})
      .TakeValue();
}

ExprPtr MustResolve(ExprPtr e, const Schema& schema) {
  auto r = e->Resolve(schema);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.TakeValue();
}

TEST(ExpressionTest, ColumnRefResolveAndEval) {
  auto schema = TestSchema();
  ExprPtr e = MustResolve(Col("a"), *schema);
  EXPECT_EQ(e->type(), TypeId::kInt64);
  auto batch = TestBatch();
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(2), 3);
  auto v = e->EvalRow(batch->RowAt(1));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int64(2));
}

TEST(ExpressionTest, UnresolvedColumnIsAnalysisError) {
  auto r = Col("missing")->Resolve(*TestSchema());
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsAnalysisError());
}

TEST(ExpressionTest, ArithmeticTyping) {
  auto schema = TestSchema();
  EXPECT_EQ(MustResolve(Add(Col("a"), Col("b")), *schema)->type(),
            TypeId::kInt64);
  EXPECT_EQ(MustResolve(Add(Col("a"), Col("x")), *schema)->type(),
            TypeId::kFloat64);
  EXPECT_EQ(MustResolve(Div(Col("a"), Col("b")), *schema)->type(),
            TypeId::kFloat64);
  EXPECT_EQ(MustResolve(Add(Col("ts"), Lit(5)), *schema)->type(),
            TypeId::kTimestamp);
  EXPECT_EQ(MustResolve(Sub(Col("ts"), Col("ts")), *schema)->type(),
            TypeId::kInt64);
}

TEST(ExpressionTest, TypeErrorsRejected) {
  auto schema = TestSchema();
  EXPECT_FALSE(Add(Col("s"), Lit(1))->Resolve(*schema).ok());
  EXPECT_FALSE(And(Col("a"), Col("flag"))->Resolve(*schema).ok());
  EXPECT_FALSE(Eq(Col("s"), Col("a"))->Resolve(*schema).ok());
  EXPECT_FALSE(Not(Col("a"))->Resolve(*schema).ok());
}

TEST(ExpressionTest, VectorizedArithmeticNoNulls) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr e = MustResolve(Mul(Col("a"), Lit(100)), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(0), 100);
  EXPECT_EQ((*col)->Int64At(2), 300);
}

TEST(ExpressionTest, NullPropagationInArithmetic) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr e = MustResolve(Add(Col("a"), Col("b")), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(0), 11);
  EXPECT_TRUE((*col)->IsNull(1));
  EXPECT_EQ((*col)->Int64At(2), 33);
}

TEST(ExpressionTest, DivisionByZeroYieldsNull) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr e = MustResolve(Div(Col("a"), Lit(0)), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE((*col)->IsNull(0));
}

TEST(ExpressionTest, ComparisonVectorized) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr e = MustResolve(Ge(Col("a"), Lit(2)), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE((*col)->BoolAt(0));
  EXPECT_TRUE((*col)->BoolAt(1));
  EXPECT_TRUE((*col)->BoolAt(2));
}

TEST(ExpressionTest, StringEquality) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr e = MustResolve(Eq(Col("s"), Lit("ca")), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_TRUE((*col)->BoolAt(0));
  EXPECT_FALSE((*col)->BoolAt(1));
  EXPECT_TRUE((*col)->IsNull(2));  // null input -> null comparison
}

TEST(ExpressionTest, KleeneLogic) {
  auto schema = TestSchema();
  // false AND null = false; true AND null = null.
  ExprPtr false_and_null =
      MustResolve(And(Lit(false), IsNull(Col("b"))), *schema);
  ExprPtr true_or_null = MustResolve(Or(Lit(true), Eq(Col("b"), Lit(1))),
                                     *schema);
  auto batch = TestBatch();
  auto c1 = false_and_null->EvalBatch(*batch);
  ASSERT_TRUE(c1.ok());
  EXPECT_FALSE((*c1)->BoolAt(1));
  auto c2 = true_or_null->EvalBatch(*batch);
  ASSERT_TRUE(c2.ok());
  EXPECT_TRUE((*c2)->BoolAt(1));
  // null AND true = null
  ExprPtr null_and_true =
      MustResolve(And(Eq(Col("b"), Lit(10)), Lit(true)), *schema);
  auto c3 = null_and_true->EvalBatch(*batch);
  ASSERT_TRUE(c3.ok());
  EXPECT_TRUE((*c3)->BoolAt(0));   // 10 == 10
  EXPECT_TRUE((*c3)->IsNull(1));   // null == 10 -> null AND true -> null
}

TEST(ExpressionTest, IsNullOperators) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr e = MustResolve(IsNull(Col("b")), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_FALSE((*col)->BoolAt(0));
  EXPECT_TRUE((*col)->BoolAt(1));
  ExprPtr e2 = MustResolve(IsNotNull(Col("b")), *schema);
  auto col2 = e2->EvalBatch(*batch);
  EXPECT_TRUE((*col2)->BoolAt(0));
}

TEST(ExpressionTest, CastStringToInt) {
  auto schema = Schema::Make({{"s", TypeId::kString, true}});
  auto batch = RecordBatch::FromRows(schema, {{Value::Str("42")},
                                              {Value::Str("nope")},
                                              {Value::Null()}})
                   .TakeValue();
  ExprPtr e = MustResolve(Cast(Col("s"), TypeId::kInt64), *schema);
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(0), 42);
  EXPECT_TRUE((*col)->IsNull(1));  // unparseable -> null
  EXPECT_TRUE((*col)->IsNull(2));
}

TEST(ExpressionTest, CastNumericAndTimestamp) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr to_ts = MustResolve(Cast(Col("a"), TypeId::kTimestamp), *schema);
  auto col = to_ts->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->type(), TypeId::kTimestamp);
  EXPECT_EQ((*col)->Int64At(0), 1);
  ExprPtr to_str = MustResolve(Cast(Col("a"), TypeId::kString), *schema);
  auto col2 = to_str->EvalBatch(*batch);
  EXPECT_EQ((*col2)->StringAt(2), "3");
}

TEST(ExpressionTest, TumblingWindowAssignsStarts) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  ExprPtr w = MustResolve(TumblingWindow(Col("ts"), 1000), *schema);
  auto col = w->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(0), 1000);  // ts=1000 -> [1000,2000)
  EXPECT_EQ((*col)->Int64At(1), 2000);  // ts=2500 -> [2000,3000)
  EXPECT_EQ((*col)->Int64At(2), 4000);  // ts=4999 -> [4000,5000)
}

TEST(ExpressionTest, WindowNegativeTimestampsFloor) {
  auto schema = Schema::Make({{"ts", TypeId::kTimestamp, false}});
  auto batch =
      RecordBatch::FromRows(schema, {{Value::Timestamp(-1)}}).TakeValue();
  ExprPtr w = MustResolve(TumblingWindow(Col("ts"), 1000), *schema);
  auto col = w->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(0), -1000);
}

TEST(ExpressionTest, SlidingWindowEnumeration) {
  // 1h windows sliding every 5min (paper §4.1), scaled down: size=60, slide=5.
  WindowExpr w(Col("ts"), 60, 5);
  std::vector<int64_t> starts;
  w.EnumerateWindowStarts(62, &starts);
  ASSERT_EQ(starts.size(), 12u);
  EXPECT_EQ(starts.front(), 5);   // [5, 65) contains 62
  EXPECT_EQ(starts.back(), 60);   // [60, 120) contains 62
}

TEST(ExpressionTest, WindowValidation) {
  auto schema = TestSchema();
  EXPECT_FALSE(Window(Col("ts"), 0, 0)->Resolve(*schema).ok());
  EXPECT_FALSE(Window(Col("ts"), 10, 20)->Resolve(*schema).ok());
  EXPECT_FALSE(Window(Col("a"), 10, 10)->Resolve(*schema).ok());  // not ts
}

TEST(ExpressionTest, UdfEvaluation) {
  auto schema = TestSchema();
  ScalarFn fn = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0].is_null()) return Value::Null();
    return Value::Int64(args[0].int64_value() * 2);
  };
  ExprPtr e =
      MustResolve(Udf("double", fn, TypeId::kInt64, {Col("b")}), *schema);
  auto batch = TestBatch();
  auto col = e->EvalBatch(*batch);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->Int64At(0), 20);
  EXPECT_TRUE((*col)->IsNull(1));
}

TEST(ExpressionTest, UdfErrorPropagates) {
  auto schema = TestSchema();
  ScalarFn fn = [](const std::vector<Value>&) -> Result<Value> {
    return Status::InvalidArgument("UDF crashed on record");
  };
  ExprPtr e = MustResolve(Udf("crash", fn, TypeId::kInt64, {Col("a")}),
                          *schema);
  auto col = e->EvalBatch(*TestBatch());
  ASSERT_FALSE(col.ok());
  EXPECT_TRUE(col.status().IsInvalidArgument());
}

TEST(ExpressionTest, RowAndBatchEvalAgree) {
  auto schema = TestSchema();
  auto batch = TestBatch();
  std::vector<ExprPtr> exprs = {
      Add(Col("a"), Col("b")),
      Mul(Col("x"), Lit(2.0)),
      Eq(Col("s"), Lit("ny")),
      And(Col("flag"), Gt(Col("a"), Lit(1))),
      Div(Col("b"), Col("a")),
      Cast(Col("a"), TypeId::kString),
      TumblingWindow(Col("ts"), 2000),
  };
  for (const ExprPtr& raw : exprs) {
    ExprPtr e = MustResolve(raw, *schema);
    auto col = e->EvalBatch(*batch);
    ASSERT_TRUE(col.ok()) << e->ToString();
    for (int64_t i = 0; i < batch->num_rows(); ++i) {
      auto v = e->EvalRow(batch->RowAt(i));
      ASSERT_TRUE(v.ok()) << e->ToString();
      EXPECT_EQ(*v, (*col)->ValueAt(i))
          << e->ToString() << " row " << i;
    }
  }
}

TEST(ExpressionTest, CollectColumnRefs) {
  ExprPtr e = And(Eq(Col("s"), Lit("ca")), Gt(Add(Col("a"), Col("b")),
                                              Lit(0)));
  std::vector<std::string> refs;
  e->CollectColumnRefs(&refs);
  ASSERT_EQ(refs.size(), 3u);
  EXPECT_EQ(refs[0], "s");
  EXPECT_EQ(refs[1], "a");
  EXPECT_EQ(refs[2], "b");
}

TEST(ExpressionTest, ToStringRenders) {
  EXPECT_EQ(Add(Col("a"), Lit(1))->ToString(), "(a + 1)");
  EXPECT_EQ(IsNull(Col("x"))->ToString(), "x IS NULL");
}

}  // namespace
}  // namespace sstreaming

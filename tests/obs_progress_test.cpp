#include "obs/progress.h"

#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "exec/streaming_query.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t latency, int64_t time_sec) {
  return {Value::Str(country), Value::Int64(latency),
          Value::Timestamp(time_sec * kSec)};
}

QueryProgress MakeFullProgress() {
  QueryProgress p;
  p.epoch = 12;
  p.rows_read = 1000;
  p.rows_written = 42;
  p.watermark_micros = 11 * kSec;
  p.state_entries = 7;
  p.state_bytes = 4096;
  p.duration_nanos = 600;
  p.plan_nanos = 100;
  p.source_read_nanos = 150;
  p.exec_nanos = 200;
  p.checkpoint_nanos = 50;
  p.commit_nanos = 75;
  p.other_nanos = 25;
  p.trigger_wait_nanos = 999;
  p.trigger_drift_nanos = 1234;
  p.watermark_lag_micros = 3 * kSec;
  LogHistogram e2e;
  e2e.RecordN(2500, 40);
  e2e.RecordN(90000, 2);
  p.e2e_latency = LatencySummary::FromHistogram(e2e);
  SourceProgress src;
  src.name = "clicks";
  src.rows = 1000;
  src.rows_per_sec = 123456.789;
  src.backlog_rows = 17;
  src.backlog_age_micros = 250000;
  p.sources.push_back(src);
  OperatorProgress op;
  op.op_id = 3;
  op.name = "StatefulAggregate";
  op.rows_in = 1000;
  op.rows_out = 42;
  op.batches = 4;
  op.cpu_nanos = 180;
  op.output_bytes = 2048;
  op.state_rows = 7;
  op.state_bytes = 4096;
  p.operators.push_back(op);
  return p;
}

TEST(ProgressJsonTest, RoundTripIsByteIdentical) {
  QueryProgress p = MakeFullProgress();
  std::string dump = p.ToJson().Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto back = QueryProgress::FromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson().Dump(), dump);
}

TEST(ProgressJsonTest, RoundTripPreservesUnsetWatermark) {
  QueryProgress p = MakeFullProgress();
  p.watermark_micros = INT64_MIN;  // serialized by omission
  std::string dump = p.ToJson().Dump();
  EXPECT_EQ(dump.find("watermarkMicros"), std::string::npos);
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok());
  auto back = QueryProgress::FromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->watermark_micros, INT64_MIN);
  EXPECT_EQ(back->ToJson().Dump(), dump);
}

TEST(ProgressJsonTest, FromJsonToleratesMissingNewFields) {
  // A log line from a build without the memory-accounting fields.
  auto parsed = Json::Parse(
      R"({"epoch": 3, "rowsRead": 10, "rowsWritten": 5,)"
      R"( "stateEntries": 2, "durationNanos": 100})");
  ASSERT_TRUE(parsed.ok());
  auto back = QueryProgress::FromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->epoch, 3);
  EXPECT_EQ(back->state_bytes, 0);
  EXPECT_TRUE(back->operators.empty());
}

// Merging every per-epoch LatencySummary must reproduce the histogram that
// recorded the full value stream — same count/sum/max, same buckets, and
// therefore the same quantile estimates. This is the contract that lets the
// lifetime Prometheus series and the per-epoch QueryProgress summaries tie
// out exactly.
TEST(LatencySummaryTest, MergedEpochSummariesReproduceLifetimeHistogram) {
  LogHistogram lifetime;
  LogHistogram merged;
  for (int epoch = 0; epoch < 5; ++epoch) {
    LogHistogram per_epoch;
    for (int i = 0; i < 100; ++i) {
      // Spread samples over several powers of two, different mix per epoch.
      int64_t value = (epoch + 1) * 1000 + i * i * 7;
      per_epoch.Record(value);
      lifetime.Record(value);
    }
    LatencySummary summary = LatencySummary::FromHistogram(per_epoch);
    // The summary survives JSON too — merge what a reader would parse back.
    auto parsed = LatencySummary::FromJson(summary.ToJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    parsed->MergeInto(&merged);
  }
  EXPECT_EQ(merged.count(), lifetime.count());
  EXPECT_EQ(merged.sum(), lifetime.sum());
  EXPECT_EQ(merged.max(), lifetime.max());
  for (int i = 0; i < LogHistogram::kNumBuckets; ++i) {
    ASSERT_EQ(merged.bucket_count(i), lifetime.bucket_count(i))
        << "bucket " << i;
  }
  EXPECT_EQ(merged.ValueAtQuantile(0.50), lifetime.ValueAtQuantile(0.50));
  EXPECT_EQ(merged.ValueAtQuantile(0.99), lifetime.ValueAtQuantile(0.99));
}

TEST(LatencySummaryTest, JsonRoundTripIsByteIdentical) {
  LogHistogram h;
  h.RecordN(100, 3);
  h.RecordN(5000, 10);
  h.RecordN(123456, 1);
  LatencySummary s = LatencySummary::FromHistogram(h);
  std::string dump = s.ToJson().Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok());
  auto back = LatencySummary::FromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson().Dump(), dump);
  EXPECT_EQ(back->count, 14);
  EXPECT_EQ(back->max_micros, 123456);
}

// The documented invariant on a real stateful query: stage durations sum to
// duration_nanos, and the new accounting fields are populated.
TEST(ProgressJsonTest, RealQueryProgressInvariants) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(stream)
          .WithWatermark("time", 5 * kSec)
          .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "window")})
          .Count();
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.num_partitions = 3;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 2), Click("ny", 1, 7)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  QueryProgress last;
  ASSERT_TRUE((*query)->GetLastProgress(&last));
  EXPECT_EQ(last.StageSumNanos(), last.duration_nanos);
  EXPECT_GT(last.state_entries, 0);
  EXPECT_GT(last.state_bytes, 0) << "memory accounting must see the window "
                                    "state";
  bool saw_stateful = false;
  int64_t op_state_bytes = 0;
  for (const OperatorProgress& op : last.operators) {
    if (op.state_rows > 0) {
      saw_stateful = true;
      op_state_bytes += op.state_bytes;
      EXPECT_GT(op.state_bytes, 0);
    }
    if (op.rows_out > 0) {
      EXPECT_GT(op.output_bytes, 0);
    }
  }
  EXPECT_TRUE(saw_stateful);
  EXPECT_EQ(op_state_bytes, last.state_bytes)
      << "query total must equal the per-operator sum";

  // The real progress also survives the JSON round trip byte-identically.
  std::string dump = last.ToJson().Dump();
  auto parsed = Json::Parse(dump);
  ASSERT_TRUE(parsed.ok());
  auto back = QueryProgress::FromJson(*parsed);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->ToJson().Dump(), dump);
}

}  // namespace
}  // namespace sstreaming

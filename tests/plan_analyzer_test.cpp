#include "analysis/plan_analyzer.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "analysis/analyzer.h"
#include "connectors/memory.h"
#include "exec/query_manager.h"
#include "logical/dataframe.h"
#include "obs/listener.h"
#include "obs/metrics.h"

namespace sstreaming {
namespace {

constexpr int64_t kSecond = 1000000;

SchemaPtr EventSchema() {
  return Schema::Make({{"user", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"country", TypeId::kString, true},
                       {"time", TypeId::kTimestamp, false}});
}

DataFrame StreamDf() {
  auto source = std::make_shared<MemoryStream>("events", EventSchema(), 2);
  return DataFrame::ReadStream(source);
}

DataFrame StaticDf() {
  return DataFrame::FromRows(
             Schema::Make({{"country", TypeId::kString, false},
                           {"region", TypeId::kString, false}}),
             {{Value::Str("ca"), Value::Str("na")}})
      .TakeValue();
}

/// Resolves the plan and runs the static analyzer over it.
PlanAnalysis AnalyzePlan(const DataFrame& df, OutputMode mode) {
  auto analyzed = Analyzer::Analyze(df.plan());
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return PlanAnalyzer::Analyze(*analyzed, mode);
}

std::set<std::string> Watermarks(const DataFrame& df) {
  auto analyzed = Analyzer::Analyze(df.plan());
  EXPECT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  return PropagatedWatermarkColumns(*analyzed);
}

// ---------------------------------------------------------------------------
// Error codes (SS1xxx)

TEST(PlanAnalyzerTest, BatchPlanIsSS1001) {
  PlanAnalysis a = AnalyzePlan(StaticDf().GroupBy({"region"}).Count(),
                               OutputMode::kUpdate);
  EXPECT_TRUE(a.Has(DiagCode::kNotStreaming));
  EXPECT_TRUE(a.FirstErrorStatus().IsInvalidArgument());
  // A streaming plan never fires it.
  EXPECT_FALSE(AnalyzePlan(StreamDf(), OutputMode::kAppend)
                   .Has(DiagCode::kNotStreaming));
}

TEST(PlanAnalyzerTest, TwoAggregationsAreSS1002) {
  DataFrame df = StreamDf()
                     .GroupBy({"country"})
                     .Count()
                     .GroupBy({"count"})
                     .Agg({CountAll("n")});
  PlanAnalysis a = AnalyzePlan(df, OutputMode::kUpdate);
  EXPECT_TRUE(a.Has(DiagCode::kMultipleAggregations));
  // One aggregation is fine.
  EXPECT_FALSE(AnalyzePlan(StreamDf().GroupBy({"country"}).Count(),
                           OutputMode::kUpdate)
                   .Has(DiagCode::kMultipleAggregations));
}

TEST(PlanAnalyzerTest, AppendAggregateWithoutWatermarkIsSS1003) {
  DataFrame df = StreamDf().GroupBy({"country"}).Count();
  PlanAnalysis a = AnalyzePlan(df, OutputMode::kAppend);
  EXPECT_TRUE(a.Has(DiagCode::kAppendAggregateNoWatermark));
  // The message must name the operator and the mode.
  ASSERT_FALSE(a.errors().empty());
  const Diagnostic diag = a.errors()[0];
  EXPECT_NE(diag.message.find("Aggregate"), std::string::npos)
      << diag.message;
  EXPECT_NE(diag.message.find("append"), std::string::npos) << diag.message;
  // Watermarked tumbling-window aggregation is append-compatible.
  DataFrame ok =
      StreamDf()
          .WithWatermark("time", 10 * kSecond)
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  EXPECT_FALSE(AnalyzePlan(ok, OutputMode::kAppend)
                   .Has(DiagCode::kAppendAggregateNoWatermark));
}

TEST(PlanAnalyzerTest, StreamStreamOuterJoinWithoutWatermarksIsSS1004) {
  auto s1 = std::make_shared<MemoryStream>("s1", EventSchema(), 1);
  auto s2 = std::make_shared<MemoryStream>("s2", EventSchema(), 1);
  DataFrame left = DataFrame::ReadStream(s1);
  DataFrame right = DataFrame::ReadStream(s2);

  DataFrame outer = left.Join(right, {"user"}, JoinType::kLeftOuter);
  EXPECT_TRUE(AnalyzePlan(outer, OutputMode::kAppend)
                  .Has(DiagCode::kStreamStreamOuterNoWatermark));

  DataFrame watermarked =
      left.WithWatermark("time", kSecond)
          .Join(right.WithWatermark("time", kSecond), {"user"},
                JoinType::kLeftOuter);
  EXPECT_FALSE(AnalyzePlan(watermarked, OutputMode::kAppend)
                   .Has(DiagCode::kStreamStreamOuterNoWatermark));
}

TEST(PlanAnalyzerTest, OuterJoinPreservingStaticSideIsSS1005) {
  DataFrame bad = StaticDf().Join(StreamDf(), {"country"},
                                  JoinType::kLeftOuter);
  PlanAnalysis a = AnalyzePlan(bad, OutputMode::kAppend);
  EXPECT_TRUE(a.Has(DiagCode::kStaticSidePreserved));
  EXPECT_TRUE(a.FirstErrorStatus().IsUnsupportedOperation());
  // Preserving the stream side is supported.
  DataFrame ok = StreamDf().Join(StaticDf(), {"country"},
                                 JoinType::kLeftOuter);
  EXPECT_FALSE(AnalyzePlan(ok, OutputMode::kAppend)
                   .Has(DiagCode::kStaticSidePreserved));
}

TEST(PlanAnalyzerTest, SortAndLimitOutsideCompleteAreSS1006AndSS1008) {
  DataFrame agg = StreamDf().GroupBy({"country"}).Count();
  DataFrame sorted = agg.OrderBy({SortKey{Col("count"), false}});
  PlanAnalysis a = AnalyzePlan(sorted.Limit(5), OutputMode::kUpdate);
  EXPECT_TRUE(a.Has(DiagCode::kSortNotComplete));
  EXPECT_TRUE(a.Has(DiagCode::kLimitNotComplete));
  // Both are legal in complete mode (top-K over the full result table).
  PlanAnalysis complete = AnalyzePlan(sorted.Limit(5), OutputMode::kComplete);
  EXPECT_FALSE(complete.Has(DiagCode::kSortNotComplete));
  EXPECT_FALSE(complete.Has(DiagCode::kLimitNotComplete));
  EXPECT_FALSE(complete.has_errors());
}

TEST(PlanAnalyzerTest, SortWithoutAggregationIsSS1007) {
  DataFrame raw = StreamDf().OrderBy({SortKey{Col("latency"), true}});
  EXPECT_TRUE(AnalyzePlan(raw, OutputMode::kComplete)
                  .Has(DiagCode::kSortBeforeAggregation));
}

TEST(PlanAnalyzerTest, EventTimeTimeoutWithoutWatermarkIsSS1009) {
  SchemaPtr out_schema = Schema::Make({{"user", TypeId::kString, false},
                                       {"events", TypeId::kInt64, false}});
  GroupUpdateFn fn = [](const Row&, const std::vector<Row>&,
                        GroupState*) -> Result<std::vector<Row>> {
    return std::vector<Row>{};
  };
  DataFrame no_wm = StreamDf()
                        .GroupByKey({As(Col("user"), "user")})
                        .FlatMapGroupsWithState(
                            fn, out_schema, GroupStateTimeout::kEventTime);
  EXPECT_TRUE(AnalyzePlan(no_wm, OutputMode::kUpdate)
                  .Has(DiagCode::kEventTimeTimeoutNoWatermark));

  DataFrame with_wm = StreamDf()
                          .WithWatermark("time", kSecond)
                          .GroupByKey({As(Col("user"), "user")})
                          .FlatMapGroupsWithState(
                              fn, out_schema, GroupStateTimeout::kEventTime);
  EXPECT_FALSE(AnalyzePlan(with_wm, OutputMode::kUpdate)
                   .Has(DiagCode::kEventTimeTimeoutNoWatermark));
}

TEST(PlanAnalyzerTest, CompleteModeWithoutAggregationIsSS1010) {
  DataFrame df = StreamDf().Where(Eq(Col("country"), Lit("ca")));
  EXPECT_TRUE(AnalyzePlan(df, OutputMode::kComplete)
                  .Has(DiagCode::kCompleteNoAggregation));
  EXPECT_FALSE(AnalyzePlan(StreamDf().GroupBy({"country"}).Count(),
                           OutputMode::kComplete)
                   .Has(DiagCode::kCompleteNoAggregation));
}

// ---------------------------------------------------------------------------
// All violations reported, not first-error-wins

TEST(PlanAnalyzerTest, ReportsEveryViolationWithProvenance) {
  // Two independent violations in one plan: sort outside complete mode AND
  // limit outside complete mode, on top of an unwatermarked aggregate.
  DataFrame df = StreamDf()
                     .GroupBy({"country"})
                     .Count()
                     .OrderBy({SortKey{Col("count"), false}})
                     .Limit(3);
  PlanAnalysis a = AnalyzePlan(df, OutputMode::kUpdate);
  EXPECT_GE(a.errors().size(), 2u);
  for (const Diagnostic& d : a.errors()) {
    EXPECT_FALSE(d.node.empty()) << DiagCodeString(d.code);
    EXPECT_FALSE(d.path.empty()) << DiagCodeString(d.code);
  }
  // Explain() renders the summary and each code.
  std::string text = a.Explain();
  EXPECT_NE(text.find("error"), std::string::npos) << text;
  EXPECT_NE(text.find("SS1006"), std::string::npos) << text;
  EXPECT_NE(text.find("SS1008"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Warning codes (SS2xxx)

TEST(PlanAnalyzerTest, UnwatermarkedAggregateWarnsSS2001WithGrowthEstimate) {
  DataFrame df = StreamDf().GroupBy({"country"}).Count();
  PlanAnalysis a = AnalyzePlan(df, OutputMode::kUpdate);
  ASSERT_TRUE(a.Has(DiagCode::kUnboundedAggregationState));
  EXPECT_FALSE(a.has_errors());
  EXPECT_TRUE(a.FirstErrorStatus().ok());  // warnings never fail a query
  const Diagnostic w = a.warnings()[0];
  EXPECT_EQ(w.severity, DiagSeverity::kWarning);
  EXPECT_NE(w.state_growth.find("O("), std::string::npos) << w.state_growth;
  // Watermarked windowed aggregation bounds its state: no warning.
  DataFrame ok =
      StreamDf()
          .WithWatermark("time", 10 * kSecond)
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  EXPECT_FALSE(AnalyzePlan(ok, OutputMode::kUpdate)
                   .Has(DiagCode::kUnboundedAggregationState));
}

TEST(PlanAnalyzerTest, DistinctWithoutWatermarkWarnsSS2002) {
  EXPECT_TRUE(AnalyzePlan(StreamDf().Distinct(), OutputMode::kAppend)
                  .Has(DiagCode::kUnboundedDistinctState));
}

TEST(PlanAnalyzerTest, InnerStreamStreamJoinWithoutWatermarkWarnsSS2003) {
  auto s1 = std::make_shared<MemoryStream>("s1", EventSchema(), 1);
  auto s2 = std::make_shared<MemoryStream>("s2", EventSchema(), 1);
  DataFrame joined = DataFrame::ReadStream(s1).Join(
      DataFrame::ReadStream(s2), {"user"});
  PlanAnalysis a = AnalyzePlan(joined, OutputMode::kAppend);
  EXPECT_TRUE(a.Has(DiagCode::kUnboundedJoinState));
  EXPECT_FALSE(a.has_errors());  // inner join is legal, just unbounded
  // Stream-static joins keep no unbounded stream state: no warning.
  EXPECT_FALSE(AnalyzePlan(StreamDf().Join(StaticDf(), {"country"}),
                           OutputMode::kAppend)
                   .Has(DiagCode::kUnboundedJoinState));
}

TEST(PlanAnalyzerTest, ProjectionDroppingWatermarkWarnsSS2004) {
  // The projection drops `time` (the watermarked column) before the
  // aggregation, so the watermark cannot bound the aggregate's state.
  DataFrame df = StreamDf()
                     .WithWatermark("time", 10 * kSecond)
                     .Select({As(Col("country"), "country"),
                              As(Col("latency"), "latency")})
                     .GroupBy({"country"})
                     .Count();
  EXPECT_TRUE(AnalyzePlan(df, OutputMode::kUpdate)
                  .Has(DiagCode::kWatermarkDroppedByProjection));
  // Keeping the watermarked column does not warn.
  DataFrame ok =
      StreamDf()
          .WithWatermark("time", 10 * kSecond)
          .Select({As(Col("country"), "country"), As(Col("time"), "time")})
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  EXPECT_FALSE(AnalyzePlan(ok, OutputMode::kUpdate)
                   .Has(DiagCode::kWatermarkDroppedByProjection));
}

TEST(PlanAnalyzerTest, CompleteModeWarnsSS2005) {
  DataFrame df = StreamDf().GroupBy({"country"}).Count();
  EXPECT_TRUE(AnalyzePlan(df, OutputMode::kComplete)
                  .Has(DiagCode::kCompleteModeMemory));
  EXPECT_FALSE(AnalyzePlan(df, OutputMode::kUpdate)
                   .Has(DiagCode::kCompleteModeMemory));
}

TEST(PlanAnalyzerTest, StateWithoutTimeoutWarnsSS2006) {
  SchemaPtr out_schema = Schema::Make({{"user", TypeId::kString, false},
                                       {"events", TypeId::kInt64, false}});
  GroupUpdateFn fn = [](const Row&, const std::vector<Row>&,
                        GroupState*) -> Result<std::vector<Row>> {
    return std::vector<Row>{};
  };
  DataFrame df = StreamDf()
                     .GroupByKey({As(Col("user"), "user")})
                     .FlatMapGroupsWithState(fn, out_schema,
                                             GroupStateTimeout::kNone);
  EXPECT_TRUE(AnalyzePlan(df, OutputMode::kUpdate)
                  .Has(DiagCode::kStateWithoutTimeout));
  DataFrame with_timeout =
      StreamDf()
          .GroupByKey({As(Col("user"), "user")})
          .FlatMapGroupsWithState(fn, out_schema,
                                  GroupStateTimeout::kProcessingTime);
  EXPECT_FALSE(AnalyzePlan(with_timeout, OutputMode::kUpdate)
                   .Has(DiagCode::kStateWithoutTimeout));
}

// ---------------------------------------------------------------------------
// Watermark propagation

TEST(WatermarkPropagationTest, SurvivesFilterAndRenamingProjection) {
  DataFrame df = StreamDf().WithWatermark("time", kSecond);
  EXPECT_EQ(Watermarks(df), std::set<std::string>{"time"});
  // Filter passes it through untouched.
  EXPECT_EQ(Watermarks(df.Where(Eq(Col("country"), Lit("ca")))),
            std::set<std::string>{"time"});
  // A projection that renames the column renames the watermark with it.
  DataFrame renamed = df.Select(
      {As(Col("user"), "user"), As(Col("time"), "event_time")});
  EXPECT_EQ(Watermarks(renamed), std::set<std::string>{"event_time"});
  // A computed expression over the column does NOT carry the watermark.
  DataFrame computed = df.Select(
      {As(Col("user"), "user"), As(Add(Col("time"), Lit(1)), "t2")});
  EXPECT_TRUE(Watermarks(computed).empty());
}

TEST(WatermarkPropagationTest, DroppedByProjection) {
  DataFrame df = StreamDf()
                     .WithWatermark("time", kSecond)
                     .Select({As(Col("user"), "user")});
  EXPECT_TRUE(Watermarks(df).empty());
}

TEST(WatermarkPropagationTest, FlowsThroughJoinFromBothSides) {
  auto s1 = std::make_shared<MemoryStream>("s1", EventSchema(), 1);
  auto s2 = std::make_shared<MemoryStream>(
      "s2",
      Schema::Make({{"user", TypeId::kString, false},
                    {"click_time", TypeId::kTimestamp, false}}),
      1);
  DataFrame left = DataFrame::ReadStream(s1).WithWatermark("time", kSecond);
  DataFrame right =
      DataFrame::ReadStream(s2).WithWatermark("click_time", kSecond);
  DataFrame joined = left.Join(right, {"user"});
  EXPECT_EQ(Watermarks(joined),
            (std::set<std::string>{"time", "click_time"}));
}

TEST(WatermarkPropagationTest, WindowAggregateExportsWindowBounds) {
  DataFrame df =
      StreamDf()
          .WithWatermark("time", 10 * kSecond)
          .GroupBy({As(TumblingWindow(Col("time"), 30 * kSecond), "window")})
          .Count();
  EXPECT_EQ(Watermarks(df),
            (std::set<std::string>{"window_start", "window_end"}));
}

// ---------------------------------------------------------------------------
// End-to-end: warnings reach the listener and the metrics registry

TEST(PlanAnalyzerEndToEndTest, UnboundedStateWarningSurfacesEverywhere) {
  auto stream = std::make_shared<MemoryStream>(
      "events",
      Schema::Make({{"k", TypeId::kString, false},
                    {"v", TypeId::kInt64, false}}),
      1);
  auto sink = std::make_shared<MemorySink>();
  auto listener = std::make_shared<CollectingListener>();
  auto metrics = std::make_shared<MetricsRegistry>();

  QueryManager manager;
  manager.AddListener(listener);
  QueryOptions options;
  options.mode = OutputMode::kUpdate;
  options.metrics = metrics;
  // Aggregation with no watermark: runs, but keeps state forever (SS2001).
  ASSERT_TRUE(manager
                  .StartQuerySynchronous(
                      "unbounded",
                      DataFrame::ReadStream(stream).GroupBy({"k"}).Count(),
                      sink, options)
                  .ok());
  ASSERT_TRUE(stream->AddData({{Value::Str("a"), Value::Int64(1)}}).ok());
  ASSERT_TRUE(manager.ProcessAllAvailable().ok());
  ASSERT_TRUE(manager.StopQuery("unbounded").ok());

  // 1) The started event carries the structured warning.
  ASSERT_EQ(listener->started().size(), 1u);
  const std::vector<Diagnostic> warnings =
      listener->started()[0].plan_warnings;
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0].code, DiagCode::kUnboundedAggregationState);
  EXPECT_EQ(warnings[0].severity, DiagSeverity::kWarning);
  EXPECT_FALSE(warnings[0].state_growth.empty());

  // 2) The metrics registry counted it, labeled with the stable code.
  Counter* counter = metrics->GetCounter("sstreaming_plan_warnings_total",
                                         {{"code", "SS2001"}});
  EXPECT_EQ(counter->value(), 1);
}

TEST(PlanAnalyzerEndToEndTest, CleanQueryProducesNoWarnings) {
  auto stream = std::make_shared<MemoryStream>(
      "events",
      Schema::Make({{"k", TypeId::kString, false},
                    {"v", TypeId::kInt64, false}}),
      1);
  auto listener = std::make_shared<CollectingListener>();
  QueryManager manager;
  manager.AddListener(listener);
  ASSERT_TRUE(manager
                  .StartQuerySynchronous(
                      "clean",
                      DataFrame::ReadStream(stream).Where(
                          Eq(Col("k"), Lit("a"))),
                      std::make_shared<MemorySink>(), QueryOptions())
                  .ok());
  ASSERT_TRUE(manager.StopQuery("clean").ok());
  ASSERT_EQ(listener->started().size(), 1u);
  EXPECT_TRUE(listener->started()[0].plan_warnings.empty());
}

}  // namespace
}  // namespace sstreaming

#include <gtest/gtest.h>

#include "common/clock.h"
#include "connectors/memory.h"
#include "exec/batch_executor.h"
#include "exec/streaming_query.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;
constexpr int64_t kMin = 60 * kSec;

SchemaPtr EventSchema() {
  return Schema::Make({{"user", TypeId::kString, false},
                       {"page", TypeId::kString, true},
                       {"time", TypeId::kTimestamp, false}});
}

Row Event(const char* user, const char* page, int64_t time_sec) {
  return {Value::Str(user), Value::Str(page), Value::Timestamp(time_sec * kSec)};
}

// The paper's Figure 3: track events per session keyed by user, timing out
// sessions after 30 minutes, returning the total event count.
GroupUpdateFn SessionCounter() {
  return [](const Row& key, const std::vector<Row>& values,
            GroupState* state) -> Result<std::vector<Row>> {
    int64_t total = state->exists() ? state->get()[0].int64_value() : 0;
    total += static_cast<int64_t>(values.size());
    if (state->HasTimedOut()) {
      // Session closed: emit the final count and drop the state.
      Row out = {key[0], Value::Int64(total)};
      state->remove();
      return std::vector<Row>{out};
    }
    state->update({Value::Int64(total)});
    state->SetTimeoutDuration(30 * kMin);
    return std::vector<Row>{};  // nothing until the session closes
  };
}

SchemaPtr SessionOutSchema() {
  return Schema::Make({{"user", TypeId::kString, false},
                       {"events", TypeId::kInt64, false}});
}

TEST(MapGroupsWithStateTest, SessionizationWithProcessingTimeTimeout) {
  ManualClock clock(0);
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(stream)
          .GroupByKey({As(Col("user"), "user")})
          .FlatMapGroupsWithState(SessionCounter(), SessionOutSchema(),
                                  GroupStateTimeout::kProcessingTime);
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  opts.clock = &clock;
  opts.num_partitions = 2;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  ASSERT_TRUE(stream->AddData({Event("alice", "a", 1), Event("bob", "b", 1),
                               Event("alice", "c", 2)})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 0u) << "sessions still open";

  // Bob stays active; Alice goes quiet past the 30 min timeout.
  clock.AdvanceMicros(20 * kMin);
  ASSERT_TRUE(stream->AddData({Event("bob", "d", 3)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 0u);

  clock.AdvanceMicros(15 * kMin);  // alice idle 35 min; bob idle 15 min
  ASSERT_TRUE(stream->AddData({Event("carol", "x", 9)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Str("alice"));
  EXPECT_EQ(rows[0][1], Value::Int64(2));

  // Bob's session closes after he too goes idle.
  clock.AdvanceMicros(31 * kMin);
  ASSERT_TRUE(stream->AddData({Event("carol", "y", 10)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0], Value::Str("bob"));
  EXPECT_EQ(rows[1][1], Value::Int64(2));
}

TEST(MapGroupsWithStateTest, EventTimeTimeoutUsesWatermark) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  GroupUpdateFn fn = [](const Row& key, const std::vector<Row>& values,
                        GroupState* state) -> Result<std::vector<Row>> {
    if (state->HasTimedOut()) {
      Row out = {key[0], state->exists() ? state->get()[0] : Value::Int64(0)};
      state->remove();
      return std::vector<Row>{out};
    }
    int64_t n = state->exists() ? state->get()[0].int64_value() : 0;
    n += static_cast<int64_t>(values.size());
    state->update({Value::Int64(n)});
    // Close the group once the watermark passes the last event by 10s.
    int64_t last_event = values.back()[2].int64_value();
    state->SetTimeoutTimestamp(last_event + 10 * kSec);
    return std::vector<Row>{};
  };
  DataFrame df = DataFrame::ReadStream(stream)
                     .WithWatermark("time", 2 * kSec)
                     .GroupByKey({As(Col("user"), "user")})
                     .FlatMapGroupsWithState(fn, SessionOutSchema(),
                                             GroupStateTimeout::kEventTime);
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  ASSERT_TRUE(stream->AddData({Event("alice", "a", 5)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 0u);
  // Event time jumps to 30s: watermark = 28s > 15s timeout.
  ASSERT_TRUE(stream->AddData({Event("bob", "b", 30)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  // One more trigger for the watermark to take effect.
  ASSERT_TRUE(stream->AddData({Event("bob", "c", 31)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Str("alice"));
  EXPECT_EQ(rows[0][1], Value::Int64(1));
}

TEST(MapGroupsWithStateTest, MapVariantEnforcesSingleOutput) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  GroupUpdateFn bad = [](const Row&, const std::vector<Row>&,
                         GroupState*) -> Result<std::vector<Row>> {
    return std::vector<Row>{};  // zero rows: invalid for map variant
  };
  DataFrame df = DataFrame::ReadStream(stream)
                     .GroupByKey({As(Col("user"), "user")})
                     .MapGroupsWithState(bad, SessionOutSchema());
  QueryOptions opts;
  opts.mode = OutputMode::kUpdate;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(stream->AddData({Event("a", "p", 1)}).ok());
  EXPECT_FALSE((*query)->ProcessAllAvailable().ok());
}

TEST(MapGroupsWithStateTest, MapVariantEmitsPerInvocation) {
  auto stream = std::make_shared<MemoryStream>("events", EventSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  GroupUpdateFn fn = [](const Row& key, const std::vector<Row>& values,
                        GroupState* state) -> Result<std::vector<Row>> {
    int64_t n = state->exists() ? state->get()[0].int64_value() : 0;
    n += static_cast<int64_t>(values.size());
    state->update({Value::Int64(n)});
    return std::vector<Row>{{key[0], Value::Int64(n)}};
  };
  DataFrame df = DataFrame::ReadStream(stream)
                     .GroupByKey({As(Col("user"), "user")})
                     .MapGroupsWithState(fn, SessionOutSchema());
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Event("a", "p", 1), Event("a", "q", 2)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Event("a", "r", 3)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Int64(2));  // first invocation: 2 events
  EXPECT_EQ(rows[1][1], Value::Int64(3));  // running count carried in state
}

TEST(MapGroupsWithStateTest, WorksInBatchMode) {
  // Paper §4.3.2: "Both operators also work in batch mode, in which case
  // the update function will only be called once [per key]."
  std::vector<Row> data = {Event("a", "p", 1), Event("b", "q", 2),
                           Event("a", "r", 3)};
  GroupUpdateFn fn = [](const Row& key, const std::vector<Row>& values,
                        GroupState* state) -> Result<std::vector<Row>> {
    EXPECT_FALSE(state->exists()) << "batch mode calls once per key";
    return std::vector<Row>{
        {key[0], Value::Int64(static_cast<int64_t>(values.size()))}};
  };
  DataFrame df = DataFrame::FromRows(EventSchema(), data)
                     .TakeValue()
                     .GroupByKey({As(Col("user"), "user")})
                     .FlatMapGroupsWithState(fn, SessionOutSchema());
  auto rows = RunBatchSorted(df);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0], Value::Str("a"));
  EXPECT_EQ((*rows)[0][1], Value::Int64(2));
  EXPECT_EQ((*rows)[1][1], Value::Int64(1));
}

TEST(BatchExecutorTest, BatchAndStreamShareOperators) {
  // The paper's §4.1 example run as a batch job.
  std::vector<Row> data = {Event("a", "p", 1), Event("b", "q", 2),
                           Event("a", "r", 3)};
  DataFrame df = DataFrame::FromRows(EventSchema(), data)
                     .TakeValue()
                     .GroupBy({"user"})
                     .Count();
  auto rows = RunBatchSorted(df);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], Value::Int64(2));
  EXPECT_EQ((*rows)[1][1], Value::Int64(1));
}

TEST(BatchExecutorTest, BatchJoinAndSort) {
  auto left = DataFrame::FromRows(
                  Schema::Make({{"k", TypeId::kInt64, false},
                                {"v", TypeId::kString, false}}),
                  {{Value::Int64(1), Value::Str("a")},
                   {Value::Int64(2), Value::Str("b")},
                   {Value::Int64(3), Value::Str("c")}})
                  .TakeValue();
  auto right = DataFrame::FromRows(
                   Schema::Make({{"k", TypeId::kInt64, false},
                                 {"w", TypeId::kInt64, false}}),
                   {{Value::Int64(2), Value::Int64(20)},
                    {Value::Int64(3), Value::Int64(30)}})
                   .TakeValue();
  DataFrame df = left.Join(right, {"k"})
                     .OrderBy({SortKey{Col("w"), /*ascending=*/false}});
  auto rows = RunBatch(df);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][2], Value::Int64(30));
  EXPECT_EQ((*rows)[1][2], Value::Int64(20));
}

TEST(BatchExecutorTest, BatchLeftOuterJoin) {
  auto left = DataFrame::FromRows(
                  Schema::Make({{"k", TypeId::kInt64, false}}),
                  {{Value::Int64(1)}, {Value::Int64(2)}})
                  .TakeValue();
  auto right = DataFrame::FromRows(
                   Schema::Make({{"k", TypeId::kInt64, false},
                                 {"w", TypeId::kInt64, false}}),
                   {{Value::Int64(2), Value::Int64(20)}})
                   .TakeValue();
  auto rows = RunBatchSorted(left.Join(right, {"k"}, JoinType::kLeftOuter));
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_TRUE((*rows)[0][1].is_null());
  EXPECT_EQ((*rows)[1][1], Value::Int64(20));
}

TEST(BatchExecutorTest, BatchDistinct) {
  auto df = DataFrame::FromRows(Schema::Make({{"x", TypeId::kInt64, false}}),
                                {{Value::Int64(1)},
                                 {Value::Int64(2)},
                                 {Value::Int64(1)}})
                .TakeValue()
                .Distinct();
  auto rows = RunBatchSorted(df);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(BatchExecutorTest, RejectsStreamingPlans) {
  auto stream = std::make_shared<MemoryStream>("s", EventSchema(), 1);
  EXPECT_FALSE(RunBatch(DataFrame::ReadStream(stream)).ok());
}

}  // namespace
}  // namespace sstreaming

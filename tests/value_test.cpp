#include "types/value.h"

#include <gtest/gtest.h>

#include "types/row.h"

namespace sstreaming {
namespace {

TEST(ValueTest, FactoriesSetTypes) {
  EXPECT_EQ(Value::Null().type(), TypeId::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).type(), TypeId::kBool);
  EXPECT_EQ(Value::Int64(5).type(), TypeId::kInt64);
  EXPECT_EQ(Value::Float64(2.5).type(), TypeId::kFloat64);
  EXPECT_EQ(Value::Str("x").type(), TypeId::kString);
  EXPECT_EQ(Value::Timestamp(1000).type(), TypeId::kTimestamp);
}

TEST(ValueTest, Accessors) {
  EXPECT_TRUE(Value::Bool(true).bool_value());
  EXPECT_EQ(Value::Int64(-3).int64_value(), -3);
  EXPECT_DOUBLE_EQ(Value::Float64(1.25).float64_value(), 1.25);
  EXPECT_EQ(Value::Str("abc").string_value(), "abc");
  EXPECT_EQ(Value::Timestamp(77).int64_value(), 77);
  EXPECT_DOUBLE_EQ(Value::Int64(4).AsDouble(), 4.0);
}

TEST(ValueTest, CompareNullsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCrossTypeCompare) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Float64(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Float64(3.5)), 0);
  EXPECT_GT(Value::Float64(4.0).Compare(Value::Int64(3)), 0);
  EXPECT_EQ(Value::Timestamp(5).Compare(Value::Int64(5)), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::Str("a").Compare(Value::Str("b")), 0);
  EXPECT_EQ(Value::Str("ab").Compare(Value::Str("ab")), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
}

TEST(ValueTest, EqualValuesHashEqually) {
  EXPECT_EQ(Value::Int64(42).Hash(), Value::Int64(42).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  // Cross-type numeric equality implies equal hashes.
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Float64(3.0).Hash());
  EXPECT_NE(Value::Int64(1).Hash(), Value::Int64(2).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int64(9).ToString(), "9");
  EXPECT_EQ(Value::Str("hey").ToString(), "hey");
}

TEST(ValueTest, EncodeDecodeRoundTrip) {
  std::vector<Value> values = {
      Value::Null(),          Value::Bool(true),    Value::Bool(false),
      Value::Int64(-1234567), Value::Float64(2.75), Value::Str(""),
      Value::Str("hello \x01 world"), Value::Timestamp(1700000000000000LL)};
  std::string buf;
  for (const Value& v : values) v.EncodeTo(&buf);
  size_t pos = 0;
  for (const Value& expected : values) {
    auto got = Value::DecodeFrom(buf, &pos);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(got->type(), expected.type());
    EXPECT_EQ(*got, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(ValueTest, DecodeTruncatedFails) {
  std::string buf;
  Value::Str("hello").EncodeTo(&buf);
  for (size_t cut = 1; cut < buf.size(); ++cut) {
    std::string partial = buf.substr(0, cut);
    size_t pos = 0;
    EXPECT_FALSE(Value::DecodeFrom(partial, &pos).ok()) << "cut=" << cut;
  }
}

TEST(RowTest, EncodeDecodeRoundTrip) {
  Row row = {Value::Int64(1), Value::Str("x"), Value::Null(),
             Value::Float64(0.5)};
  std::string buf;
  EncodeRow(row, &buf);
  auto decoded = DecodeRow(buf);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(CompareRows(*decoded, row), 0);
}

TEST(RowTest, CompareRowsLexicographic) {
  Row a = {Value::Int64(1), Value::Str("a")};
  Row b = {Value::Int64(1), Value::Str("b")};
  Row c = {Value::Int64(2)};
  EXPECT_LT(CompareRows(a, b), 0);
  EXPECT_LT(CompareRows(a, c), 0);
  EXPECT_EQ(CompareRows(a, a), 0);
  // Prefix ordering: shorter row sorts first when equal so far.
  Row prefix = {Value::Int64(1)};
  EXPECT_LT(CompareRows(prefix, a), 0);
}

TEST(RowTest, HashRowConsistentWithEquality) {
  Row a = {Value::Int64(7), Value::Str("k")};
  Row b = {Value::Int64(7), Value::Str("k")};
  EXPECT_EQ(HashRow(a), HashRow(b));
}

}  // namespace
}  // namespace sstreaming

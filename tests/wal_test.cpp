#include "wal/write_ahead_log.h"

#include <gtest/gtest.h>

#include "storage/fs.h"

namespace sstreaming {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_wal_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }

  EpochPlan MakePlan(int64_t epoch) {
    EpochPlan plan;
    plan.epoch = epoch;
    plan.watermark_micros = epoch * 1000;
    plan.sources.push_back(
        SourceOffsets{"kafka", {0, 10 * epoch}, {5 * epoch, 20 * epoch}});
    plan.sources.push_back(SourceOffsets{"files", {epoch}, {epoch + 1}});
    return plan;
  }

  std::string dir_;
};

TEST_F(WalTest, EmptyLog) {
  auto log = WriteAheadLog::Open(dir_);
  ASSERT_TRUE(log.ok());
  auto latest = log->LatestPlannedEpoch();
  ASSERT_TRUE(latest.ok());
  EXPECT_FALSE(latest->has_value());
  EXPECT_FALSE(log->IsCommitted(0));
  EXPECT_TRUE(log->ReadPlan(0).status().IsNotFound());
}

TEST_F(WalTest, PlanRoundTrip) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  EpochPlan plan = MakePlan(3);
  ASSERT_TRUE(log.WritePlan(plan).ok());
  auto read = log.ReadPlan(3);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_TRUE(*read == plan);
}

TEST_F(WalTest, PlanIsHumanReadableJson) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  auto names = ListDir(dir_ + "/offsets");
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 1u);
  auto text = ReadFile(dir_ + "/offsets/" + (*names)[0]);
  ASSERT_TRUE(text.ok());
  auto json = Json::Parse(*text);
  ASSERT_TRUE(json.ok()) << "WAL entries must be valid JSON";
  EXPECT_EQ(json->Get("epoch").int_value(), 1);
  EXPECT_NE(text->find('\n'), std::string::npos) << "expected pretty JSON";
}

TEST_F(WalTest, LatestEpochTracksHighest) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  for (int64_t e = 1; e <= 12; ++e) {
    ASSERT_TRUE(log.WritePlan(MakePlan(e)).ok());
  }
  auto latest = log.LatestPlannedEpoch();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(**latest, 12);
  auto all = log.ListPlannedEpochs();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 12u);
  EXPECT_EQ(all->front(), 1);
}

TEST_F(WalTest, CommitTracking) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  ASSERT_TRUE(log.WritePlan(MakePlan(2)).ok());
  ASSERT_TRUE(log.WriteCommit(1).ok());
  EXPECT_TRUE(log.IsCommitted(1));
  EXPECT_FALSE(log.IsCommitted(2));
  auto latest = log.LatestCommittedEpoch();
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(**latest, 1);
}

TEST_F(WalTest, RecoveryPointIsPlannedButUncommitted) {
  // The paper's recovery rule: re-run the last planned epoch that has no
  // commit record, relying on sink idempotence.
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  for (int64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE(log.WritePlan(MakePlan(e)).ok());
    if (e < 3) {
      ASSERT_TRUE(log.WriteCommit(e).ok());
    }
  }
  // Simulated restart: a fresh handle over the same directory.
  auto recovered = WriteAheadLog::Open(dir_).TakeValue();
  EXPECT_EQ(**recovered.LatestPlannedEpoch(), 3);
  EXPECT_EQ(**recovered.LatestCommittedEpoch(), 2);
}

TEST_F(WalTest, TruncateAfterRollsBack) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  for (int64_t e = 1; e <= 5; ++e) {
    ASSERT_TRUE(log.WritePlan(MakePlan(e)).ok());
    ASSERT_TRUE(log.WriteCommit(e).ok());
  }
  ASSERT_TRUE(log.TruncateAfter(2).ok());
  EXPECT_EQ(**log.LatestPlannedEpoch(), 2);
  EXPECT_EQ(**log.LatestCommittedEpoch(), 2);
  EXPECT_FALSE(log.IsCommitted(3));
  EXPECT_TRUE(log.ReadPlan(3).status().IsNotFound());
  EXPECT_TRUE(log.ReadPlan(2).ok());
}

TEST_F(WalTest, TruncateAllWithMinusOne) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  ASSERT_TRUE(log.TruncateAfter(-1).ok());
  EXPECT_FALSE((*log.LatestPlannedEpoch()).has_value());
}

TEST_F(WalTest, OverwritingPlanIsAllowed) {
  // Recovery may redefine the last (uncommitted) epoch.
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  EpochPlan changed = MakePlan(1);
  changed.sources[0].end = {1, 1};
  ASSERT_TRUE(log.WritePlan(changed).ok());
  auto read = log.ReadPlan(1);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(*read == changed);
}

TEST_F(WalTest, FromJsonRejectsMalformed) {
  EXPECT_FALSE(EpochPlan::FromJson(Json::Int(3)).ok());
  Json obj = Json::Object();
  obj.Set("epoch", Json::Int(1));
  EXPECT_FALSE(EpochPlan::FromJson(obj).ok());  // missing sources
}

TEST_F(WalTest, WatermarkPersists) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  EpochPlan plan = MakePlan(7);
  plan.watermark_micros = 123456789;
  ASSERT_TRUE(log.WritePlan(plan).ok());
  EXPECT_EQ(log.ReadPlan(7)->watermark_micros, 123456789);
  // Absent watermark round-trips as INT64_MIN.
  EpochPlan no_wm = MakePlan(8);
  no_wm.watermark_micros = INT64_MIN;
  ASSERT_TRUE(log.WritePlan(no_wm).ok());
  EXPECT_EQ(log.ReadPlan(8)->watermark_micros, INT64_MIN);
}

std::string EpochFile(int64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%012lld.json",
                static_cast<long long>(epoch));
  return buf;
}

TEST_F(WalTest, RepairTornTailRemovesTornPlan) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  ASSERT_TRUE(log.WriteCommit(1).ok());
  // Simulate a crash mid-write of plan 2: half a JSON document under the
  // final name (what a torn write leaves behind).
  ASSERT_TRUE(
      WriteFileAtomic(dir_ + "/offsets/" + EpochFile(2), "{\"epoch\": 2,")
          .ok());
  auto removed = log.RepairTornTail();
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  EXPECT_EQ(*removed, 1);
  EXPECT_EQ(log.LatestPlannedEpoch()->value_or(0), 1);
  ASSERT_TRUE(log.ReadPlan(1).ok());  // intact entries untouched
  EXPECT_EQ(*log.RepairTornTail(), 0);  // idempotent
}

TEST_F(WalTest, RepairTornTailRemovesTornCommit) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  ASSERT_TRUE(log.WriteCommit(1).ok());
  ASSERT_TRUE(log.WritePlan(MakePlan(2)).ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/commits/" + EpochFile(2), "{\"ep").ok());
  auto removed = log.RepairTornTail();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 1);
  EXPECT_TRUE(log.IsCommitted(1));
  EXPECT_FALSE(log.IsCommitted(2));  // epoch 2 back to planned-not-committed
  EXPECT_EQ(log.LatestPlannedEpoch()->value_or(0), 2);
}

TEST_F(WalTest, RepairTornTailRemovesMultipleTornEntries) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  // Two garbage tail entries (e.g. torn write, crash, torn write again).
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/offsets/" + EpochFile(2), "junk").ok());
  ASSERT_TRUE(WriteFileAtomic(dir_ + "/offsets/" + EpochFile(3), "").ok());
  auto removed = log.RepairTornTail();
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(*removed, 2);
  EXPECT_EQ(log.LatestPlannedEpoch()->value_or(0), 1);
}

TEST_F(WalTest, RepairTornTailLeavesMidLogCorruptionAlone) {
  auto log = WriteAheadLog::Open(dir_).TakeValue();
  ASSERT_TRUE(log.WritePlan(MakePlan(1)).ok());
  ASSERT_TRUE(log.WritePlan(MakePlan(2)).ok());
  ASSERT_TRUE(log.WritePlan(MakePlan(3)).ok());
  // Corruption *behind* an intact tail cannot come from a torn tail write;
  // repair must refuse to mask it.
  ASSERT_TRUE(
      WriteFileAtomic(dir_ + "/offsets/" + EpochFile(2), "garbage").ok());
  EXPECT_EQ(*log.RepairTornTail(), 0);
  EXPECT_FALSE(log.ReadPlan(2).ok());  // still surfaces as an error
  ASSERT_TRUE(log.ReadPlan(3).ok());
}

}  // namespace
}  // namespace sstreaming

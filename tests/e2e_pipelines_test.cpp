// End-to-end pipelines over the durable connectors — the deployment shapes
// from §8: file-based ETL with restarts (the §8.1 platform ingests from S3
// directories) and bus-to-bus transformation (§6.3's most common low-latency
// scenario), including execution on a real thread pool.

#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "connectors/bus_connectors.h"
#include "connectors/memory.h"
#include "connectors/file_connectors.h"
#include "exec/streaming_query.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

class E2ePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = MakeTempDir("sstreaming_e2e_test");
    ASSERT_TRUE(dir.ok());
    dir_ = *dir;
  }
  void TearDown() override { RemoveDirRecursive(dir_).ok(); }
  std::string dir_;
};

TEST_F(E2ePipelineTest, FileToFileEtlWithRestart) {
  // JSONL in -> filter/transform -> JSONL out, with a checkpoint; restart
  // picks up only new files' records and epoch files never duplicate.
  std::string in_dir = dir_ + "/in";
  ASSERT_TRUE(EnsureDir(in_dir).ok());
  SchemaPtr schema = Schema::Make({{"level", TypeId::kString, false},
                                   {"msg", TypeId::kString, true},
                                   {"code", TypeId::kInt64, true}});
  ASSERT_TRUE(
      WriteFileAtomic(in_dir + "/00.jsonl",
                      "{\"level\":\"ERROR\",\"msg\":\"disk\",\"code\":5}\n"
                      "{\"level\":\"INFO\",\"msg\":\"ok\",\"code\":0}\n"
                      "{\"level\":\"ERROR\",\"msg\":\"net\",\"code\":7}\n")
          .ok());
  auto make_query = [&](std::shared_ptr<JsonFileSink>* sink_out) {
    auto source = std::make_shared<JsonFileSource>(in_dir, schema);
    auto sink = std::make_shared<JsonFileSink>(dir_ + "/out");
    *sink_out = sink;
    DataFrame df = DataFrame::ReadStream(source)
                       .Where(Eq(Col("level"), Lit("ERROR")))
                       .Select({As(Col("msg"), "msg"),
                                As(Mul(Col("code"), Lit(100)), "code100")});
    QueryOptions opts;
    opts.mode = OutputMode::kAppend;
    opts.checkpoint_dir = dir_ + "/ckpt";
    return StreamingQuery::Start(df, sink, opts);
  };

  SchemaPtr out_schema = Schema::Make({{"msg", TypeId::kString, true},
                                       {"code100", TypeId::kInt64, true}});
  {
    std::shared_ptr<JsonFileSink> sink;
    auto query = make_query(&sink);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    auto rows = sink->ReadAll(*out_schema);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 2u);
  }
  // New file while down; restart processes exactly the delta.
  ASSERT_TRUE(
      WriteFileAtomic(in_dir + "/01.jsonl",
                      "{\"level\":\"ERROR\",\"msg\":\"cpu\",\"code\":9}\n")
          .ok());
  {
    std::shared_ptr<JsonFileSink> sink;
    auto query = make_query(&sink);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    auto rows = sink->ReadAll(*out_schema);
    ASSERT_TRUE(rows.ok());
    ASSERT_EQ(rows->size(), 3u) << "no duplicates, no losses";
    bool found = false;
    for (const Row& r : *rows) {
      if (r[0] == Value::Str("cpu")) {
        EXPECT_EQ(r[1], Value::Int64(900));
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(E2ePipelineTest, BusToBusEtlOnThreadPool) {
  // §6.3's "stream to stream map operations": Kafka in -> transform ->
  // Kafka out, executed with real parallel tasks.
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("raw", 4).ok());
  ASSERT_TRUE(bus.CreateTopic("clean", 4).ok());
  SchemaPtr schema = Schema::Make({{"id", TypeId::kInt64, false},
                                   {"v", TypeId::kInt64, false}});
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(bus.Append("raw", static_cast<int>(i % 4),
                           {Value::Int64(i), Value::Int64(i % 10)})
                    .ok());
  }
  auto source = std::make_shared<BusSource>(&bus, "raw", schema);
  auto sink = std::make_shared<BusSink>(&bus, "clean");
  DataFrame df = DataFrame::ReadStream(source)
                     .Where(Ge(Col("v"), Lit(5)))
                     .Select({As(Col("id"), "id")});
  PoolScheduler scheduler(4);
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.scheduler = &scheduler;
  auto query = StreamingQuery::Start(df, sink, opts);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(*bus.TotalRecords("clean"), 500);
}

TEST_F(E2ePipelineTest, AggregationOnThreadPoolMatchesInline) {
  // The thread-pool scheduler must produce identical results to inline
  // execution (shuffle + state store under real concurrency).
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("events", 4).ok());
  SchemaPtr schema = Schema::Make({{"k", TypeId::kInt64, false},
                                   {"v", TypeId::kInt64, false}});
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(bus.Append("events", static_cast<int>(i % 4),
                           {Value::Int64(i % 17), Value::Int64(1)})
                    .ok());
  }
  auto run = [&](TaskScheduler* scheduler) {
    auto source = std::make_shared<BusSource>(&bus, "events", schema);
    auto sink = std::make_shared<MemorySink>();
    DataFrame df = DataFrame::ReadStream(source)
                       .GroupBy({"k"})
                       .Agg({CountAll("n"), SumOf(Col("v"), "s")});
    QueryOptions opts;
    opts.mode = OutputMode::kUpdate;
    opts.num_partitions = 4;
    opts.scheduler = scheduler;
    auto query = StreamingQuery::Start(df, sink, opts);
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    EXPECT_TRUE((*query)->ProcessAllAvailable().ok());
    return sink->SortedSnapshot();
  };
  InlineScheduler inline_sched;
  PoolScheduler pool_sched(4);
  auto a = run(&inline_sched);
  auto b = run(&pool_sched);
  ASSERT_EQ(a.size(), 17u);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(CompareRows(a[i], b[i]), 0);
  }
}

TEST_F(E2ePipelineTest, BackgroundTriggerLoopWithInterval) {
  MessageBus bus;
  ASSERT_TRUE(bus.CreateTopic("in", 1).ok());
  SchemaPtr schema = Schema::Make({{"v", TypeId::kInt64, false}});
  auto source = std::make_shared<BusSource>(&bus, "in", schema);
  auto sink = std::make_shared<MemorySink>();
  QueryOptions opts;
  opts.mode = OutputMode::kAppend;
  opts.trigger = Trigger::ProcessingTime(2000);  // 2ms
  auto query =
      StreamingQuery::Start(DataFrame::ReadStream(source), sink, opts)
          .TakeValue();
  ASSERT_TRUE(query->StartBackground().ok());
  EXPECT_TRUE(query->IsActive());
  ASSERT_TRUE(bus.Append("in", 0, {Value::Int64(1)}).ok());
  for (int i = 0; i < 1000 && sink->Snapshot().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(sink->Snapshot().size(), 1u);
  query->Stop();
  EXPECT_FALSE(query->IsActive());
}

}  // namespace
}  // namespace sstreaming

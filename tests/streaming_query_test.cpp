#include "exec/streaming_query.h"

#include <gtest/gtest.h>

#include "connectors/memory.h"
#include "exec/batch_executor.h"
#include "storage/fs.h"

namespace sstreaming {
namespace {

constexpr int64_t kSec = 1000000;

SchemaPtr ClickSchema() {
  return Schema::Make({{"country", TypeId::kString, false},
                       {"latency", TypeId::kInt64, false},
                       {"time", TypeId::kTimestamp, false}});
}

Row Click(const char* country, int64_t latency, int64_t time_sec) {
  return {Value::Str(country), Value::Int64(latency),
          Value::Timestamp(time_sec * kSec)};
}

QueryOptions Ephemeral(OutputMode mode) {
  QueryOptions opts;
  opts.mode = mode;
  opts.num_partitions = 3;
  return opts;
}

TEST(StreamingQueryTest, MapOnlyAppendPipeline) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream)
                     .Where(Eq(Col("country"), Lit("ca")))
                     .Select({As(Col("latency"), "latency")});
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  ASSERT_TRUE(stream->AddData({Click("ca", 10, 1), Click("ny", 20, 1),
                               Click("ca", 30, 2)})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Int64(10));
  EXPECT_EQ(rows[1][0], Value::Int64(30));

  // Incremental: later data adds to the sink, earlier rows unchanged.
  ASSERT_TRUE(stream->AddData({Click("ca", 50, 3)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 3u);
  EXPECT_GE((*query)->last_epoch(), 2);
}

TEST(StreamingQueryTest, NoNewDataRunsNoEpoch) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream);
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok());
  auto ran = (*query)->ProcessOneTrigger();
  ASSERT_TRUE(ran.ok());
  EXPECT_FALSE(*ran);
  EXPECT_EQ((*query)->last_epoch(), 0);
}

TEST(StreamingQueryTest, UpdateModeAggregation) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kUpdate));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ca", 2, 1),
                               Click("ny", 3, 1)})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  {
    auto rows = sink->SortedSnapshot();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0][0], Value::Str("ca"));
    EXPECT_EQ(rows[0][1], Value::Int64(2));
    EXPECT_EQ(rows[1][1], Value::Int64(1));
  }
  // New records upsert the changed key only.
  ASSERT_TRUE(stream->AddData({Click("ca", 4, 2)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Value::Int64(3));  // ca -> 3
  EXPECT_EQ(rows[1][1], Value::Int64(1));  // ny unchanged
}

TEST(StreamingQueryTest, CompleteModeRewritesTable) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  auto query =
      StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kComplete));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 1u);
  ASSERT_TRUE(stream->AddData({Click("ny", 1, 1), Click("de", 1, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 3u);  // full table every trigger
}

TEST(StreamingQueryTest, CompleteModeWithSort) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream)
                     .GroupBy({"country"})
                     .Count()
                     .OrderBy({SortKey{Col("count"), /*ascending=*/false}})
                     .Limit(2);
  auto query =
      StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kComplete));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream
                  ->AddData({Click("ca", 1, 1), Click("ca", 1, 1),
                             Click("ca", 1, 1), Click("ny", 1, 1),
                             Click("ny", 1, 1), Click("de", 1, 1)})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->Snapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Str("ca"));  // top count first
  EXPECT_EQ(rows[0][1], Value::Int64(3));
  EXPECT_EQ(rows[1][0], Value::Str("ny"));
}

TEST(StreamingQueryTest, WindowedAppendWithWatermark) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  // 10s tumbling windows, 5s lateness bound.
  DataFrame df =
      DataFrame::ReadStream(stream)
          .WithWatermark("time", 5 * kSec)
          .GroupBy({As(TumblingWindow(Col("time"), 10 * kSec), "window")})
          .Count();
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Epoch 1: events in window [0,10); watermark still unset -> no output.
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 2), Click("ny", 1, 7)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 0u);

  // Epoch 2: event at t=16 pushes watermark to 16-5=11 > 10, but the
  // watermark only takes effect next epoch.
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 16)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ((*query)->watermark_micros(), 11 * kSec);

  // Epoch 3: any new data triggers emission of the closed window [0,10).
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 17)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Timestamp(0));        // window_start
  EXPECT_EQ(rows[0][1], Value::Timestamp(10 * kSec));  // window_end
  EXPECT_EQ(rows[0][2], Value::Int64(2));            // count

  // Late data for the closed window is dropped, not re-emitted.
  ASSERT_TRUE(stream->AddData({Click("zz", 1, 3), Click("ca", 1, 18)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->SortedSnapshot().size(), 1u)
      << "late record must not reopen a closed window";
}

TEST(StreamingQueryTest, SlidingWindowCounts) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  // 10s windows sliding every 5s: an event belongs to two windows.
  DataFrame df =
      DataFrame::ReadStream(stream)
          .GroupBy({As(Window(Col("time"), 10 * kSec, 5 * kSec), "w"),
                    NamedExpr{Col("country"), "country"}})
          .Count();
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kUpdate));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 7)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);  // windows [0,10) and [5,15)
  EXPECT_EQ(rows[0][0], Value::Timestamp(0));
  EXPECT_EQ(rows[1][0], Value::Timestamp(5 * kSec));
  EXPECT_EQ(rows[0][3], Value::Int64(1));
}

TEST(StreamingQueryTest, StreamStaticJoin) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame regions =
      DataFrame::FromRows(Schema::Make({{"country", TypeId::kString, false},
                                        {"region", TypeId::kString, false}}),
                          {{Value::Str("ca"), Value::Str("na")},
                           {Value::Str("de"), Value::Str("eu")}})
          .TakeValue();
  DataFrame df = DataFrame::ReadStream(stream)
                     .Join(regions, {"country"})
                     .Select({As(Col("country"), "country"),
                              As(Col("region"), "region")});
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ny", 1, 1),
                               Click("de", 1, 1)})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);  // inner join drops ny
  EXPECT_EQ(rows[0][1], Value::Str("na"));
  EXPECT_EQ(rows[1][1], Value::Str("eu"));
}

TEST(StreamingQueryTest, StreamStaticLeftOuterJoin) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame regions =
      DataFrame::FromRows(Schema::Make({{"country", TypeId::kString, false},
                                        {"region", TypeId::kString, false}}),
                          {{Value::Str("ca"), Value::Str("na")}})
          .TakeValue();
  DataFrame df = DataFrame::ReadStream(stream)
                     .Join(regions, {"country"}, JoinType::kLeftOuter);
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ny", 2, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Str("ca"));
  EXPECT_EQ(rows[0][3], Value::Str("na"));
  EXPECT_EQ(rows[1][0], Value::Str("ny"));
  EXPECT_TRUE(rows[1][3].is_null());  // unmatched stream row preserved
}

TEST(StreamingQueryTest, StreamStreamInnerJoin) {
  auto impressions = std::make_shared<MemoryStream>(
      "impressions",
      Schema::Make({{"ad", TypeId::kString, false},
                    {"itime", TypeId::kTimestamp, false}}),
      2);
  auto clicks = std::make_shared<MemoryStream>(
      "clicks2",
      Schema::Make({{"ad", TypeId::kString, false},
                    {"ctime", TypeId::kTimestamp, false}}),
      2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(impressions)
                     .Join(DataFrame::ReadStream(clicks), {"ad"});
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  // Impression arrives first; click for the same ad arrives a later epoch.
  ASSERT_TRUE(impressions->AddData({{Value::Str("a1"), Value::Timestamp(1)}})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 0u);
  ASSERT_TRUE(
      clicks->AddData({{Value::Str("a1"), Value::Timestamp(5)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Str("a1"));
  EXPECT_EQ(rows[0][1], Value::Timestamp(1));
  EXPECT_EQ(rows[0][2], Value::Timestamp(5));
  // Same-epoch arrivals must match exactly once too.
  ASSERT_TRUE(impressions->AddData({{Value::Str("a2"), Value::Timestamp(9)}})
                  .ok());
  ASSERT_TRUE(
      clicks->AddData({{Value::Str("a2"), Value::Timestamp(9)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 2u);
}

TEST(StreamingQueryTest, StreamStreamLeftOuterJoinEmitsAtWatermark) {
  auto left_schema = Schema::Make({{"k", TypeId::kString, false},
                                   {"ltime", TypeId::kTimestamp, false}});
  auto right_schema = Schema::Make({{"k", TypeId::kString, false},
                                    {"rtime", TypeId::kTimestamp, false}});
  auto left = std::make_shared<MemoryStream>("l", left_schema, 1);
  auto right = std::make_shared<MemoryStream>("r", right_schema, 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df =
      DataFrame::ReadStream(left)
          .WithWatermark("ltime", 2 * kSec)
          .Join(DataFrame::ReadStream(right).WithWatermark("rtime", 2 * kSec),
                {"k"}, JoinType::kLeftOuter);
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  ASSERT_TRUE(left->AddData({{Value::Str("m"), Value::Timestamp(1 * kSec)},
                             {Value::Str("u"), Value::Timestamp(1 * kSec)}})
                  .ok());
  ASSERT_TRUE(
      right->AddData({{Value::Str("m"), Value::Timestamp(1 * kSec)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 1u);  // matched pair emitted

  // Push the watermark far past the unmatched row. Both inputs must
  // advance: the engine uses the min-across-inputs watermark policy, so a
  // stalled side holds the watermark (and the outer result) back.
  ASSERT_TRUE(
      left->AddData({{Value::Str("x"), Value::Timestamp(20 * kSec)}}).ok());
  ASSERT_TRUE(
      right->AddData({{Value::Str("x2"), Value::Timestamp(20 * kSec)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  ASSERT_TRUE(
      left->AddData({{Value::Str("y"), Value::Timestamp(21 * kSec)}}).ok());
  ASSERT_TRUE(
      right->AddData({{Value::Str("y2"), Value::Timestamp(21 * kSec)}}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  auto rows = sink->SortedSnapshot();
  // "u" must now appear null-padded exactly once.
  int null_padded = 0;
  for (const Row& r : rows) {
    if (r[0] == Value::Str("u")) {
      EXPECT_TRUE(r[2].is_null());
      ++null_padded;
    }
  }
  EXPECT_EQ(null_padded, 1);
}

TEST(StreamingQueryTest, DistinctStreaming) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream)
                     .SelectColumns({"country"})
                     .Distinct();
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ca", 2, 2),
                               Click("ny", 3, 3)})
                  .ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 2u);
  // Duplicates across epochs are still suppressed (state store).
  ASSERT_TRUE(stream->AddData({Click("ca", 9, 9), Click("de", 1, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  EXPECT_EQ(sink->Snapshot().size(), 3u);
}

TEST(StreamingQueryTest, InvalidModeRejectedAtStart) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_FALSE(query.ok());
  EXPECT_TRUE(query.status().IsAnalysisError());
}

TEST(StreamingQueryTest, UdfFailureFailsEpochAndQuery) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 1);
  auto sink = std::make_shared<MemorySink>();
  ScalarFn crashing = [](const std::vector<Value>& args) -> Result<Value> {
    if (args[0] == Value::Str("poison")) {
      return Status::InvalidArgument("cannot parse record");
    }
    return args[0];
  };
  DataFrame df = DataFrame::ReadStream(stream).Select(
      {As(Udf("parse", crashing, TypeId::kString, {Col("country")}), "c")});
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kAppend));
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  ASSERT_TRUE(stream->AddData({Click("ok", 1, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  ASSERT_TRUE(stream->AddData({Click("poison", 1, 2)}).ok());
  auto ran = (*query)->ProcessOneTrigger();
  ASSERT_FALSE(ran.ok());
  EXPECT_FALSE((*query)->error().ok());
  // Further triggers refuse until restart.
  EXPECT_FALSE((*query)->ProcessOneTrigger().ok());
  // The failed epoch did not corrupt the sink.
  EXPECT_EQ(sink->Snapshot().size(), 1u);
}

TEST(StreamingQueryTest, ProgressMetricsPopulated) {
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 2);
  auto sink = std::make_shared<MemorySink>();
  DataFrame df = DataFrame::ReadStream(stream).GroupBy({"country"}).Count();
  auto query = StreamingQuery::Start(df, sink, Ephemeral(OutputMode::kUpdate));
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(stream->AddData({Click("ca", 1, 1), Click("ny", 1, 1)}).ok());
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
  const auto& progress = (*query)->recent_progress();
  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress.back().rows_read, 2);
  EXPECT_EQ(progress.back().rows_written, 2);
  EXPECT_EQ(progress.back().state_entries, 2);
  EXPECT_GT(progress.back().duration_nanos, 0);
}

// Prefix-consistency property (paper §4.2): for ANY interleaving of adds
// and triggers, the final update-mode table equals running the same query
// as a batch job over the full input prefix.
class PrefixConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefixConsistencyTest, StreamEqualsBatchOnPrefix) {
  Random rng(static_cast<uint64_t>(GetParam()));
  auto stream = std::make_shared<MemoryStream>("clicks", ClickSchema(), 3);
  auto sink = std::make_shared<MemorySink>();
  const char* countries[] = {"ca", "ny", "de", "jp", "br"};
  std::vector<Row> all_rows;

  DataFrame streaming =
      DataFrame::ReadStream(stream)
          .Where(Gt(Col("latency"), Lit(5)))
          .GroupBy({"country"})
          .Agg({CountAll("n"), SumOf(Col("latency"), "total")});
  auto query =
      StreamingQuery::Start(streaming, sink, Ephemeral(OutputMode::kUpdate));
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  for (int step = 0; step < 30; ++step) {
    int burst = 1 + static_cast<int>(rng.Uniform(10));
    std::vector<Row> batch;
    for (int i = 0; i < burst; ++i) {
      batch.push_back(Click(countries[rng.Uniform(5)],
                            static_cast<int64_t>(rng.Uniform(20)),
                            static_cast<int64_t>(step)));
    }
    all_rows.insert(all_rows.end(), batch.begin(), batch.end());
    ASSERT_TRUE(stream->AddData(batch).ok());
    if (rng.OneIn(0.6)) {
      ASSERT_TRUE((*query)->ProcessAllAvailable().ok());
    }
  }
  ASSERT_TRUE((*query)->ProcessAllAvailable().ok());

  DataFrame batch_df = DataFrame::FromRows(ClickSchema(), all_rows)
                           .TakeValue()
                           .Where(Gt(Col("latency"), Lit(5)))
                           .GroupBy({"country"})
                           .Agg({CountAll("n"), SumOf(Col("latency"),
                                                      "total")});
  auto batch_result = RunBatchSorted(batch_df);
  ASSERT_TRUE(batch_result.ok()) << batch_result.status().ToString();
  auto stream_result = sink->SortedSnapshot();
  ASSERT_EQ(stream_result.size(), batch_result->size());
  for (size_t i = 0; i < stream_result.size(); ++i) {
    EXPECT_EQ(CompareRows(stream_result[i], (*batch_result)[i]), 0)
        << "row " << i << ": stream=" << RowToString(stream_result[i])
        << " batch=" << RowToString((*batch_result)[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixConsistencyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace sstreaming

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "runtime/scheduler.h"

namespace sstreaming {
namespace {

TEST(LogHistogramTest, SmallValuesAreExact) {
  LogHistogram h;
  for (int64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16);
  EXPECT_EQ(h.sum(), 120);
  EXPECT_EQ(h.max(), 15);
  // Values below 16 land in dedicated buckets, so quantiles are exact.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 15);
}

TEST(LogHistogramTest, NegativeValuesClampToZero) {
  LogHistogram h;
  h.Record(-100);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(LogHistogramTest, BucketIndexRoundTrips) {
  for (int64_t v : std::vector<int64_t>{0, 1, 15, 16, 17, 100, 1000, 123456,
                                        int64_t{1} << 40}) {
    int index = LogHistogram::BucketIndex(v);
    // The bucket's upper bound must be >= the value, and the previous
    // bucket's upper bound < value (the buckets partition the range).
    EXPECT_GE(LogHistogram::BucketUpperBound(index), v) << "value " << v;
    if (index > 0) {
      EXPECT_LT(LogHistogram::BucketUpperBound(index - 1), v) << "value " << v;
    }
  }
}

TEST(LogHistogramTest, QuantilesMatchExactPercentiles) {
  // Compare against exact order statistics of a skewed distribution; the
  // log-bucketed estimate must stay within one sub-bucket (~6%, allow 10%).
  std::mt19937_64 rng(7);
  std::lognormal_distribution<double> dist(10.0, 1.0);
  LogHistogram h;
  std::vector<int64_t> values;
  for (int i = 0; i < 20000; ++i) {
    int64_t v = static_cast<int64_t>(dist(rng));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    int64_t exact = values[static_cast<size_t>(
        q * static_cast<double>(values.size() - 1))];
    int64_t estimate = h.ValueAtQuantile(q);
    EXPECT_NEAR(static_cast<double>(estimate), static_cast<double>(exact),
                0.10 * static_cast<double>(exact))
        << "quantile " << q;
  }
  LogHistogram::Snapshot snap = h.GetSnapshot();
  EXPECT_LE(snap.p50, snap.p95);
  EXPECT_LE(snap.p95, snap.p99);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_EQ(snap.max, values.back());
  EXPECT_EQ(snap.count, 20000);
}

TEST(LogHistogramTest, QuantileNeverExceedsTrueMax) {
  LogHistogram h;
  h.Record(1000);
  // A single observation: every quantile is that observation.
  EXPECT_EQ(h.ValueAtQuantile(0.5), 1000);
  EXPECT_EQ(h.ValueAtQuantile(0.99), 1000);
}

TEST(LogHistogramTest, ResetClears) {
  LogHistogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.ValueAtQuantile(0.5), 0);
}

TEST(LogHistogramTest, ConcurrentRecordsLoseNothing) {
  LogHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.count(), int64_t{kThreads} * kPerThread);
  EXPECT_EQ(h.max(), int64_t{kThreads} * kPerThread - 1);
}

TEST(MetricsRegistryTest, InstrumentsAreStableAndShared) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("requests_total");
  Counter* c2 = registry.GetCounter("requests_total");
  EXPECT_EQ(c1, c2);  // same series, same instrument
  Counter* c3 = registry.GetCounter("requests_total", {{"op", "Filter"}});
  EXPECT_NE(c1, c3);  // different labels, different series
  c1->Increment(5);
  c3->Increment();
  EXPECT_EQ(c2->value(), 5);
  EXPECT_EQ(c3->value(), 1);
  EXPECT_EQ(registry.num_instruments(), 2u);
}

TEST(MetricsRegistryTest, GaugeMoves) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("queue_depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.GetCounter("ss_rows_total", {{"op", "Source[\"x\"]"}})
      ->Increment(42);
  registry.GetGauge("ss_depth")->Set(3);
  LogHistogram* h = registry.GetHistogram("ss_latency_nanos");
  for (int i = 1; i <= 100; ++i) h->Record(i * 1000);

  std::string text = registry.ToPrometheusText();
  // TYPE headers per family.
  EXPECT_NE(text.find("# TYPE ss_rows_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ss_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ss_latency_nanos summary"), std::string::npos);
  // Label values are escaped (the quote inside the op name).
  EXPECT_NE(text.find("ss_rows_total{op=\"Source[\\\"x\\\"]\"} 42"),
            std::string::npos);
  EXPECT_NE(text.find("ss_depth 3"), std::string::npos);
  // Histogram renders as a summary with quantiles plus _sum/_count/_max.
  EXPECT_NE(text.find("ss_latency_nanos{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ss_latency_nanos{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ss_latency_nanos_count 100"), std::string::npos);
  EXPECT_NE(text.find("ss_latency_nanos_max 100000"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonDump) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(7);
  registry.GetGauge("g")->Set(-2);
  registry.GetHistogram("h")->Record(100);
  Json json = registry.ToJson();
  EXPECT_EQ(json.Get("counters").Get("c").int_value(), 7);
  EXPECT_EQ(json.Get("gauges").Get("g").int_value(), -2);
  EXPECT_EQ(json.Get("histograms").Get("h").Get("count").int_value(), 1);
}

TEST(MetricsRegistryTest, EscapeLabelValueHandlesSpecials) {
  EXPECT_EQ(EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
}

TEST(MetricsRegistryTest, ConcurrentUpdatesFromPoolScheduler) {
  // The registry is updated from real scheduler worker threads — the shape
  // of contention the engine produces — and must lose no increments.
  MetricsRegistry registry;
  PoolScheduler scheduler(4);
  scheduler.set_metrics(&registry);
  Counter* work = registry.GetCounter("work_total");
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 1000;
  std::vector<std::function<Status()>> tasks;
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([&registry, work, t]() -> Status {
      LogHistogram* h = registry.GetHistogram("work_latency_nanos");
      for (int i = 0; i < kIncrementsPerTask; ++i) {
        work->Increment();
        h->Record(t * 100 + i);
      }
      return Status::OK();
    });
  }
  ASSERT_TRUE(scheduler.RunStage("work", std::move(tasks)).ok());
  EXPECT_EQ(work->value(), int64_t{kTasks} * kIncrementsPerTask);
  EXPECT_EQ(registry.GetHistogram("work_latency_nanos")->count(),
            int64_t{kTasks} * kIncrementsPerTask);
  // The instrumented scheduler recorded its own task/stage series too.
  EXPECT_EQ(registry.GetCounter("sstreaming_scheduler_tasks_total")->value(),
            kTasks);
  EXPECT_EQ(registry.GetHistogram("sstreaming_scheduler_task_nanos")->count(),
            kTasks);
  EXPECT_EQ(registry.GetHistogram("sstreaming_scheduler_stage_nanos")->count(),
            1);
  EXPECT_EQ(registry.GetGauge("sstreaming_scheduler_queue_depth")->value(), 0);
}

TEST(MetricsRegistryTest, PrometheusOutputIsSortedWithOneTypePerFamily) {
  MetricsRegistry registry;
  // Created deliberately out of order, with a histogram whose _sum/_count
  // sample names would interleave the family under naive key sorting
  // ('_' < '{' in ASCII).
  registry.GetCounter("zzz_total")->Increment(3);
  registry.GetHistogram("foo", {{"q", "b"}})->Record(10);
  registry.GetCounter("aaa_total", {{"op", "late"}})->Increment(1);
  registry.GetHistogram("foo", {{"q", "a"}})->Record(20);
  registry.GetGauge("mmm")->Set(5);

  std::string text = registry.ToPrometheusText();
  // Exactly one TYPE line per family.
  for (const char* family : {"aaa_total", "foo", "mmm", "zzz_total"}) {
    std::string type_line = std::string("# TYPE ") + family + " ";
    size_t first = text.find(type_line);
    ASSERT_NE(first, std::string::npos) << text;
    EXPECT_EQ(text.find(type_line, first + 1), std::string::npos)
        << "duplicate TYPE for " << family << ":\n"
        << text;
  }
  // Families appear in sorted order, series within a family sorted by
  // labels.
  EXPECT_LT(text.find("# TYPE aaa_total"), text.find("# TYPE foo"));
  EXPECT_LT(text.find("# TYPE foo"), text.find("# TYPE mmm"));
  EXPECT_LT(text.find("# TYPE mmm"), text.find("# TYPE zzz_total"));
  EXPECT_LT(text.find("foo{q=\"a\""), text.find("foo{q=\"b\""));
  // foo's _sum/_count samples stay inside the foo block (after both
  // quantile series, before the next family's TYPE line).
  EXPECT_LT(text.find("foo_sum"), text.find("# TYPE mmm"));

  // Unchanged registry => byte-identical scrape (diff-clean).
  EXPECT_EQ(registry.ToPrometheusText(), text);
}

TEST(MetricsRegistryTest, RenderPrometheusTextMergesAndDedupes) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("shared_total", {{"src", "a"}})->Increment(1);
  b.GetCounter("shared_total", {{"src", "b"}})->Increment(2);
  b.GetGauge("only_b")->Set(7);
  std::string text =
      MetricsRegistry::RenderPrometheusText({&a, &b, &a, nullptr});
  // One TYPE line even though the family spans two registries, and the
  // duplicate/null registry pointers changed nothing.
  size_t first = text.find("# TYPE shared_total counter");
  ASSERT_NE(first, std::string::npos) << text;
  EXPECT_EQ(text.find("# TYPE shared_total", first + 1), std::string::npos);
  EXPECT_NE(text.find("shared_total{src=\"a\"} 1"), std::string::npos);
  EXPECT_NE(text.find("shared_total{src=\"b\"} 2"), std::string::npos);
  EXPECT_NE(text.find("only_b 7"), std::string::npos);
}

}  // namespace
}  // namespace sstreaming

#include "types/column.h"

#include <gtest/gtest.h>

namespace sstreaming {
namespace {

TEST(ColumnTest, AppendAndReadInt64) {
  Column c(TypeId::kInt64);
  c.AppendInt64(1);
  c.AppendNull();
  c.AppendInt64(3);
  EXPECT_EQ(c.size(), 3);
  EXPECT_EQ(c.null_count(), 1);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_EQ(c.Int64At(0), 1);
  EXPECT_EQ(c.Int64At(2), 3);
}

TEST(ColumnTest, AppendAndReadString) {
  Column c(TypeId::kString);
  c.AppendString("a");
  c.AppendString("bb");
  c.AppendNull();
  EXPECT_EQ(c.StringAt(1), "bb");
  EXPECT_TRUE(c.IsNull(2));
}

TEST(ColumnTest, ValueAtBoxesCorrectly) {
  Column c(TypeId::kTimestamp);
  c.AppendInt64(500);
  c.AppendNull();
  EXPECT_EQ(c.ValueAt(0), Value::Timestamp(500));
  EXPECT_TRUE(c.ValueAt(1).is_null());
}

TEST(ColumnTest, AppendValueMatchesType) {
  Column c(TypeId::kFloat64);
  c.AppendValue(Value::Float64(1.5));
  c.AppendValue(Value::Int64(2));  // widened
  c.AppendValue(Value::Null());
  EXPECT_DOUBLE_EQ(c.Float64At(0), 1.5);
  EXPECT_DOUBLE_EQ(c.Float64At(1), 2.0);
  EXPECT_TRUE(c.IsNull(2));
}

TEST(ColumnTest, NumericAtWidens) {
  Column c(TypeId::kInt64);
  c.AppendInt64(7);
  EXPECT_DOUBLE_EQ(c.NumericAt(0), 7.0);
}

TEST(ColumnTest, HashIntoAgreesWithValueHash) {
  Column c(TypeId::kString);
  c.AppendString("k1");
  c.AppendNull();
  c.AppendString("k2");
  std::vector<uint64_t> hashes(3, 0x811C9DC5ULL);
  c.HashInto(&hashes);
  EXPECT_EQ(hashes[0], HashMix(0x811C9DC5ULL, Value::Str("k1").Hash()));
  EXPECT_EQ(hashes[1], HashMix(0x811C9DC5ULL, Value::Null().Hash()));
  EXPECT_EQ(hashes[2], HashMix(0x811C9DC5ULL, Value::Str("k2").Hash()));
}

TEST(ColumnTest, BoolStorage) {
  Column c(TypeId::kBool);
  c.AppendBool(true);
  c.AppendBool(false);
  c.AppendNull();
  EXPECT_TRUE(c.BoolAt(0));
  EXPECT_FALSE(c.BoolAt(1));
  EXPECT_TRUE(c.has_nulls());
}

TEST(ColumnTest, ReserveDoesNotChangeSize) {
  Column c(TypeId::kInt64);
  c.Reserve(100);
  EXPECT_EQ(c.size(), 0);
}

}  // namespace
}  // namespace sstreaming
